#include "graph/independent_set.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <tuple>

#include "common/rng.hpp"

namespace qsel::graph {
namespace {

/// Brute force: lexicographically first independent set of size q by
/// enumerating subsets in lexicographic (sorted-sequence) order.
std::optional<ProcessSet> brute_first_is(const SimpleGraph& g, int q) {
  const ProcessId n = g.node_count();
  std::optional<ProcessSet> best;
  // Enumerate all masks; pick independent ones of size q; compare lexico.
  auto lex_less = [](ProcessSet a, ProcessSet b) {
    // Compare as increasing sequences.
    auto ita = a.begin();
    auto itb = b.begin();
    while (ita != a.end() && itb != b.end()) {
      if (*ita != *itb) return *ita < *itb;
      ++ita;
      ++itb;
    }
    return false;  // same size by construction
  };
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    const ProcessSet s(mask);
    if (s.size() != q || !is_independent_set(g, s)) continue;
    if (!best || lex_less(s, *best)) best = s;
  }
  return best;
}

SimpleGraph random_graph(ProcessId n, double p, Rng& rng) {
  SimpleGraph g(n);
  for (ProcessId u = 0; u < n; ++u)
    for (ProcessId v = u + 1; v < n; ++v)
      if (rng.chance(p)) g.add_edge(u, v);
  return g;
}

TEST(IndependentSetTest, Definitions) {
  const auto g = SimpleGraph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_TRUE(is_independent_set(g, ProcessSet{0, 2}));
  EXPECT_TRUE(is_independent_set(g, ProcessSet{}));
  EXPECT_FALSE(is_independent_set(g, ProcessSet{0, 1}));
  EXPECT_TRUE(is_vertex_cover(g, ProcessSet{0, 2}));
  EXPECT_FALSE(is_vertex_cover(g, ProcessSet{0}));
}

TEST(IndependentSetTest, VertexCoverBudget) {
  // A triangle needs a cover of 2.
  const auto triangle = SimpleGraph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_FALSE(vertex_cover_within(triangle, 1).has_value());
  const auto cover = vertex_cover_within(triangle, 2);
  ASSERT_TRUE(cover.has_value());
  EXPECT_LE(cover->size(), 2);
  EXPECT_TRUE(is_vertex_cover(triangle, *cover));
}

TEST(IndependentSetTest, EmptyGraphFirstSetIsPrefix) {
  const SimpleGraph g(6);
  EXPECT_EQ(first_independent_set(g, 4), (ProcessSet{0, 1, 2, 3}));
  EXPECT_EQ(first_independent_set(g, 0), ProcessSet{});
}

TEST(IndependentSetTest, StarGraphExcludesCenter) {
  // Star around node 0: any independent set of size >= 2 avoids 0.
  const auto g =
      SimpleGraph::from_edges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  EXPECT_EQ(first_independent_set(g, 4), (ProcessSet{1, 2, 3, 4}));
  EXPECT_FALSE(first_independent_set(g, 5).has_value());
  EXPECT_EQ(first_independent_set(g, 1), ProcessSet{0});
}

TEST(IndependentSetTest, Figure4Scenario) {
  // Figure 4 of the paper (5 processes; our ids are 0-based, p_k = k-1).
  // Epoch-2 graph: suspicions (p1,p2), (p1,p5), (p2,p5) from epoch 3 and
  // (p3,p4) from epoch 2 — no independent set of size 3 exists.
  auto epoch2 = SimpleGraph::from_edges(5, {{0, 1}, {0, 4}, {1, 4}, {2, 3}});
  EXPECT_FALSE(has_independent_set(epoch2, 3));
  // Epoch 3 removes the (p3,p4) edge; {p1,p3,p4} and {p3,p4,p5} become
  // independent sets; the lexicographically first is {p1,p3,p4}.
  auto epoch3 = SimpleGraph::from_edges(5, {{0, 1}, {0, 4}, {1, 4}});
  EXPECT_TRUE(has_independent_set(epoch3, 3));
  EXPECT_TRUE(is_independent_set(epoch3, ProcessSet{0, 2, 3}));  // p1 p3 p4
  EXPECT_TRUE(is_independent_set(epoch3, ProcessSet{2, 3, 4}));  // p3 p4 p5
  EXPECT_EQ(first_independent_set(epoch3, 3), (ProcessSet{0, 2, 3}));
}

TEST(IndependentSetTest, FirstMatchesBruteForceOnRandomGraphs) {
  Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    const ProcessId n = static_cast<ProcessId>(rng.between(2, 10));
    const auto g = random_graph(n, rng.uniform01() * 0.7, rng);
    for (int q = 0; q <= static_cast<int>(n); ++q) {
      const auto expected = brute_first_is(g, q);
      const auto actual = first_independent_set(g, q);
      EXPECT_EQ(actual, expected) << "n=" << n << " q=" << q;
      EXPECT_EQ(has_independent_set(g, q), expected.has_value());
      if (actual) {
        EXPECT_EQ(actual->size(), q);
        EXPECT_TRUE(is_independent_set(g, *actual));
      }
    }
  }
}

TEST(IndependentSetTest, AllIndependentSetsEnumerated) {
  const auto g = SimpleGraph::from_edges(4, {{0, 1}});
  const auto sets = all_independent_sets(g, 2);
  // Pairs without the edge (0,1): {0,2},{0,3},{1,2},{1,3},{2,3}.
  ASSERT_EQ(sets.size(), 5u);
  EXPECT_EQ(sets.front(), (ProcessSet{0, 2}));
  EXPECT_EQ(sets.back(), (ProcessSet{2, 3}));
  for (ProcessSet s : sets) EXPECT_TRUE(is_independent_set(g, s));
}

TEST(IndependentSetTest, CliqueHasOnlySingletons) {
  SimpleGraph clique(5);
  for (ProcessId u = 0; u < 5; ++u)
    for (ProcessId v = u + 1; v < 5; ++v) clique.add_edge(u, v);
  EXPECT_TRUE(has_independent_set(clique, 1));
  EXPECT_FALSE(has_independent_set(clique, 2));
  EXPECT_EQ(all_independent_sets(clique, 1).size(), 5u);
}

// The paper's key degree observation (Theorem 3 proof): with |Pi| = f + q,
// a node of degree f + 1 cannot be in an independent set of size q.
TEST(IndependentSetTest, HighDegreeNodeExcluded) {
  const ProcessId n = 7;
  const int f = 2;
  const int q = static_cast<int>(n) - f;
  SimpleGraph g(n);
  for (ProcessId v = 1; v <= static_cast<ProcessId>(f) + 1; ++v)
    g.add_edge(0, v);  // degree f+1 at node 0
  const auto is = first_independent_set(g, q);
  ASSERT_TRUE(is.has_value());
  EXPECT_FALSE(is->contains(0));
}

struct SweepParam {
  ProcessId n;
  int f;
};

class IndependentSetSweep : public ::testing::TestWithParam<SweepParam> {};

// Property: any graph whose edges are confined to f+1 nodes admits an
// independent set of size q = n - f (those f+1 nodes minus one form a
// vertex cover of size f). This is why suspicions touching only the f
// faulty processes can never exhaust the epoch (Section VI-C).
TEST_P(IndependentSetSweep, EdgesConfinedToFPlusOneNodesAdmitQuorum) {
  const auto [n, f] = GetParam();
  const int q = static_cast<int>(n) - f;
  Rng rng(17 * n + static_cast<unsigned>(f));
  for (int trial = 0; trial < 50; ++trial) {
    SimpleGraph g(n);
    const auto core = static_cast<ProcessId>(f + 1);
    for (ProcessId u = 0; u < core; ++u)
      for (ProcessId v = u + 1; v < core; ++v)
        if (rng.chance(0.5)) g.add_edge(u, v);
    const auto is = first_independent_set(g, q);
    ASSERT_TRUE(is.has_value())
        << "edges confined to f+1 nodes admit a cover of size <= f";
    EXPECT_TRUE(is_independent_set(g, *is));
  }
}

INSTANTIATE_TEST_SUITE_P(NandF, IndependentSetSweep,
                         ::testing::Values(SweepParam{4, 1}, SweepParam{7, 2},
                                           SweepParam{10, 3}, SweepParam{13, 4},
                                           SweepParam{9, 2}, SweepParam{16, 5},
                                           SweepParam{21, 6}, SweepParam{25, 8}),
                         [](const auto& param_info) {
                           return "n" + std::to_string(param_info.param.n) +
                                  "_f" + std::to_string(param_info.param.f);
                         });

}  // namespace
}  // namespace qsel::graph
