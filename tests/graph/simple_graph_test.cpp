#include "graph/simple_graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace qsel::graph {
namespace {

TEST(SimpleGraphTest, EmptyGraph) {
  const SimpleGraph g(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_TRUE(g.covered_nodes().empty());
  EXPECT_EQ(g.isolated_nodes(), ProcessSet::full(5));
}

TEST(SimpleGraphTest, AddRemoveEdge) {
  SimpleGraph g(4);
  g.add_edge(0, 2);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));  // undirected
  EXPECT_EQ(g.edge_count(), 1);
  g.add_edge(0, 2);  // duplicate is a no-op
  EXPECT_EQ(g.edge_count(), 1);
  g.remove_edge(2, 0);
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.edge_count(), 0);
  g.remove_edge(0, 2);  // removing absent edge is a no-op
  EXPECT_EQ(g.edge_count(), 0);
}

TEST(SimpleGraphTest, SelfLoopRejected) {
  SimpleGraph g(3);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(SimpleGraphTest, NeighborsAndDegree) {
  SimpleGraph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 3);
  EXPECT_EQ(g.neighbors(0), (ProcessSet{1, 3}));
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.degree(2), 0);
}

TEST(SimpleGraphTest, CoveredAndIsolated) {
  SimpleGraph g(5);
  g.add_edge(1, 3);
  EXPECT_EQ(g.covered_nodes(), (ProcessSet{1, 3}));
  EXPECT_EQ(g.isolated_nodes(), (ProcessSet{0, 2, 4}));
}

TEST(SimpleGraphTest, EdgesSortedCanonical) {
  SimpleGraph g(5);
  g.add_edge(3, 1);
  g.add_edge(0, 4);
  g.add_edge(2, 0);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], std::make_pair(ProcessId{0}, ProcessId{2}));
  EXPECT_EQ(edges[1], std::make_pair(ProcessId{0}, ProcessId{4}));
  EXPECT_EQ(edges[2], std::make_pair(ProcessId{1}, ProcessId{3}));
}

TEST(SimpleGraphTest, FromEdgesRoundTrip) {
  const auto g = SimpleGraph::from_edges(6, {{0, 1}, {2, 5}, {1, 4}});
  EXPECT_EQ(SimpleGraph::from_edges(6, g.edges()), g);
}

TEST(SimpleGraphTest, SubgraphRelation) {
  const auto g = SimpleGraph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto sub = SimpleGraph::from_edges(4, {{0, 1}, {2, 3}});
  const auto other = SimpleGraph::from_edges(4, {{0, 3}});
  EXPECT_TRUE(sub.is_subgraph_of(g));
  EXPECT_TRUE(g.is_subgraph_of(g));
  EXPECT_FALSE(g.is_subgraph_of(sub));
  EXPECT_FALSE(other.is_subgraph_of(g));
  // Different node counts are never subgraphs.
  EXPECT_FALSE(SimpleGraph(3).is_subgraph_of(g));
}

TEST(SimpleGraphTest, AnyEdgeWithin) {
  const auto g = SimpleGraph::from_edges(5, {{1, 3}, {2, 4}});
  const auto [u, v] = g.any_edge_within(ProcessSet{1, 2, 3});
  EXPECT_EQ(u, 1u);
  EXPECT_EQ(v, 3u);
  const auto [x, y] = g.any_edge_within(ProcessSet{0, 1, 2});
  EXPECT_EQ(x, kNoProcess);
  EXPECT_EQ(y, kNoProcess);
}

}  // namespace
}  // namespace qsel::graph
