#include "graph/line_subgraph.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "graph/independent_set.hpp"

namespace qsel::graph {
namespace {

/// Brute force over all edge subsets: the maximum achievable designated
/// leader among line subgraphs of g (Definition 1).
ProcessId brute_max_leader(const SimpleGraph& g) {
  const auto edges = g.edges();
  ProcessId best = 0;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << edges.size());
       ++mask) {
    SimpleGraph l(g.node_count());
    for (std::size_t i = 0; i < edges.size(); ++i)
      if ((mask >> i) & 1) l.add_edge(edges[i].first, edges[i].second);
    if (!is_line_subgraph(l)) continue;
    if (const auto leader = line_leader(l))
      best = std::max(best, *leader);
  }
  return best;
}

SimpleGraph random_graph(ProcessId n, double p, Rng& rng) {
  SimpleGraph g(n);
  for (ProcessId u = 0; u < n; ++u)
    for (ProcessId v = u + 1; v < n; ++v)
      if (rng.chance(p)) g.add_edge(u, v);
  return g;
}

TEST(LineSubgraphTest, Definition) {
  // A path is a line subgraph.
  EXPECT_TRUE(
      is_line_subgraph(SimpleGraph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}})));
  // Disjoint paths are a line subgraph.
  EXPECT_TRUE(is_line_subgraph(SimpleGraph::from_edges(6, {{0, 1}, {3, 4}})));
  // The empty graph is a line subgraph.
  EXPECT_TRUE(is_line_subgraph(SimpleGraph(4)));
  // Degree 3 is not.
  EXPECT_FALSE(
      is_line_subgraph(SimpleGraph::from_edges(5, {{0, 1}, {0, 2}, {0, 3}})));
  // A cycle is not.
  EXPECT_FALSE(
      is_line_subgraph(SimpleGraph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}})));
}

TEST(LineSubgraphTest, LeaderIsMinimumUncovered) {
  const auto l = SimpleGraph::from_edges(5, {{0, 1}, {2, 3}});
  EXPECT_EQ(line_leader(l), 4u);
  EXPECT_EQ(line_leader(SimpleGraph(3)), 0u);
  // Everything covered -> no leader.
  EXPECT_EQ(line_leader(SimpleGraph::from_edges(2, {{0, 1}})), std::nullopt);
}

TEST(LineSubgraphTest, CoverWithPathsBasics) {
  // Required {0,1} coverable by the single edge (0,1).
  auto g = SimpleGraph::from_edges(3, {{0, 1}});
  const auto line = cover_with_paths(g, ProcessSet{0, 1}, 2);
  ASSERT_TRUE(line.has_value());
  EXPECT_TRUE(is_line_subgraph(*line));
  EXPECT_TRUE(line->has_edge(0, 1));

  // Required node with no partner other than `avoid` is uncoverable.
  EXPECT_FALSE(cover_with_paths(g, ProcessSet{0}, 1).has_value());
  // Empty requirement is trivially coverable.
  EXPECT_TRUE(cover_with_paths(SimpleGraph(3), ProcessSet{}, 0).has_value());
}

TEST(LineSubgraphTest, CoverNeedsHelperNode) {
  // 0 and 1 are not adjacent; both hang off 2: the path 0-2-1 covers both.
  const auto g = SimpleGraph::from_edges(4, {{0, 2}, {1, 2}});
  const auto line = cover_with_paths(g, ProcessSet{0, 1}, 3);
  ASSERT_TRUE(line.has_value());
  EXPECT_TRUE(is_line_subgraph(*line));
  EXPECT_GE(line->degree(0), 1);
  EXPECT_GE(line->degree(1), 1);
}

TEST(LineSubgraphTest, CoverRespectsAvoidNode) {
  // Covering 0 is possible via 1 or 2; avoiding 1 forces the edge (0,2).
  const auto g = SimpleGraph::from_edges(3, {{0, 1}, {0, 2}});
  const auto line = cover_with_paths(g, ProcessSet{0}, 1);
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->degree(1), 0);
  EXPECT_TRUE(line->has_edge(0, 2));
}

// Reconstruction of Example 1 (Section VIII): G on 7 nodes whose maximal
// line subgraph is the 3-path p1-p2-p3; its middle p2 is not a possible
// follower, and adding the edge (p2,p5) does not change the leader.
TEST(LineSubgraphTest, Example1Reconstruction) {
  auto g = SimpleGraph::from_edges(7, {{0, 1}, {1, 2}});  // p1-p2, p2-p3
  const auto l = maximal_line_subgraph(g);
  EXPECT_TRUE(is_line_subgraph(l));
  EXPECT_TRUE(l.is_subgraph_of(g));
  ASSERT_EQ(line_leader(l), 3u);  // p4 leads: p1..p3 covered by one path
  // p2 (index 1) is the middle of a 3-path: not a possible follower.
  const ProcessSet followers = possible_followers(l);
  EXPECT_FALSE(followers.contains(1));
  EXPECT_EQ(followers, ProcessSet::full(7) - ProcessSet{1});
  // Adding (p2,p5) cannot improve the leader: p4 stays uncovered.
  g.add_edge(1, 4);
  EXPECT_EQ(line_leader(maximal_line_subgraph(g)), 3u);
}

// Reconstruction of Example 2: adding an edge gives the smaller nodes a new
// covering option and the leader moves up.
TEST(LineSubgraphTest, Example2Reconstruction) {
  auto g = SimpleGraph::from_edges(7, {{0, 1}, {5, 6}});
  // L = {(0,1)} already designates leader p3 (index 2); note L is maximal
  // even though it could be *extended* by the edge (5,6) — maximality is
  // about the designated leader, not edge count.
  EXPECT_EQ(line_leader(maximal_line_subgraph(g)), 2u);
  // Adding (p3,p4): now {0,1} and {2,3} are covered by disjoint edges.
  g.add_edge(2, 3);
  const auto l = maximal_line_subgraph(g);
  EXPECT_EQ(line_leader(l), 4u);
  EXPECT_TRUE(l.is_subgraph_of(g));
}

TEST(LineSubgraphTest, PossibleFollowersDefinition) {
  // Path of 4: 0-1-2-3. Internal nodes are adjacent to exactly one
  // degree-1 node each, so everyone is a possible follower.
  const auto path4 = SimpleGraph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(possible_followers(path4), ProcessSet::full(5));
  // 3-path 0-1-2: the middle is excluded.
  const auto path3 = SimpleGraph::from_edges(4, {{0, 1}, {1, 2}});
  EXPECT_EQ(possible_followers(path3), (ProcessSet{0, 2, 3}));
  // Two disjoint 3-paths: both middles excluded.
  const auto two = SimpleGraph::from_edges(
      7, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  EXPECT_EQ(possible_followers(two), (ProcessSet{0, 2, 3, 5, 6}));
}

TEST(LineSubgraphTest, MaximalLeaderMatchesBruteForce) {
  Rng rng(555);
  for (int trial = 0; trial < 200; ++trial) {
    const ProcessId n = static_cast<ProcessId>(rng.between(2, 8));
    const auto g = random_graph(n, rng.uniform01() * 0.6, rng);
    if (g.edge_count() > 12) continue;  // keep brute force tractable
    const auto l = maximal_line_subgraph(g);
    ASSERT_TRUE(is_line_subgraph(l));
    ASSERT_TRUE(l.is_subgraph_of(g));
    const auto leader = line_leader(l);
    ASSERT_TRUE(leader.has_value());
    EXPECT_EQ(*leader, brute_max_leader(g)) << "n=" << n;
  }
}

// Adding one edge never lowers the maximal leader (the monotonicity that
// Lemma 5 and the O(f) bound of Theorem 9 rest on).
TEST(LineSubgraphTest, LeaderMonotoneUnderEdgeAddition) {
  Rng rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    const ProcessId n = static_cast<ProcessId>(rng.between(3, 9));
    auto g = random_graph(n, 0.3, rng);
    const auto before = line_leader(maximal_line_subgraph(g));
    const auto u = static_cast<ProcessId>(rng.below(n));
    const auto v = static_cast<ProcessId>(rng.below(n));
    if (u == v) continue;
    g.add_edge(u, v);
    const auto after = line_leader(maximal_line_subgraph(g));
    ASSERT_TRUE(before.has_value() && after.has_value());
    EXPECT_GE(*after, *before);
  }
}

// Lemma 8 a): a line subgraph containing 3f nodes leaves at most one
// independent set of size q, namely leader + possible followers.
TEST(LineSubgraphTest, Lemma8a) {
  const int f = 2;
  const ProcessId n = 3 * f + 1;  // 7
  // f disjoint 3-paths covering 3f = 6 nodes; node 6 uncovered.
  const auto g = SimpleGraph::from_edges(n, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  const int q = static_cast<int>(n) - f;  // 5
  const auto sets = all_independent_sets(g, q);
  ASSERT_EQ(sets.size(), 1u);
  const auto leader = line_leader(g);
  ASSERT_TRUE(leader.has_value());
  ProcessSet expected = possible_followers(g);
  EXPECT_TRUE(expected.contains(*leader));
  EXPECT_EQ(sets.front(), expected);
}

// Lemma 8 b): a line subgraph containing 3f + 1 nodes kills every
// independent set of size q.
TEST(LineSubgraphTest, Lemma8b) {
  const int f = 2;
  const ProcessId n = 3 * f + 1;  // 7
  // Paths covering 3f + 1 = 7 nodes: 3-path + 4-path.
  const auto g = SimpleGraph::from_edges(
      n, {{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 6}});
  EXPECT_FALSE(has_independent_set(g, static_cast<int>(n) - f));
}

// Whenever Algorithm 2 actually selects followers — i.e. the graph still
// admits an independent set of size q = n - f with n > 3f — no possible
// follower has a G-edge to the leader: otherwise the leader could have
// been covered (via that edge) and pushed higher, contradicting
// maximality. Without quorum existence the property can fail, but then
// Line 9 bumps the epoch instead of selecting followers.
TEST(LineSubgraphTest, FollowersNeverAdjacentToLeaderWhenQuorumExists) {
  Rng rng(901);
  int checked = 0;
  for (int trial = 0; trial < 600; ++trial) {
    const ProcessId n = static_cast<ProcessId>(rng.between(4, 10));
    const int f = static_cast<int>((n - 1) / 3);  // largest f with n > 3f
    const int q = static_cast<int>(n) - f;
    const auto g = random_graph(n, 0.25, rng);
    if (!has_independent_set(g, q)) continue;
    ++checked;
    const auto l = maximal_line_subgraph(g);
    const auto leader = line_leader(l);
    ASSERT_TRUE(leader.has_value());
    const ProcessSet followers = possible_followers(l) - ProcessSet{*leader};
    EXPECT_FALSE(g.neighbors(*leader).intersects(followers))
        << "leader " << *leader << " adjacent to a possible follower in "
        << g;
  }
  EXPECT_GT(checked, 100) << "sweep lost its statistical power";
}

}  // namespace
}  // namespace qsel::graph
