// Pinned fuzz-corpus reproducers, replayed as regression tests. Each file
// in corpus/ is a schedule that once exposed a real bug (or wedge); the
// oracles must stay green forever after the fix.
//
//   groupmux_wedge.json  — the PR 7 GroupMux framing wedge: a sharded-
//       group schedule (mux clients riding a qs substrate) with a crash
//       and a partition. The epoch-progress oracle (min_final_epoch = 2)
//       asserts the crash forces no-independent-set -> advance-epoch
//       while the mux keeps framing correctly.
//   fs_livelock.json — fs termination live-lock: post-heal crashed
//       processes were re-suspected every epoch, transient line-leader
//       divergence armed FOLLOWERS expectations against processes that
//       never considered themselves leader, and the failure detector's
//       adaptive backoff never engaged (a never-sent FOLLOWERS cannot
//       match late). Fixed by backoff-on-cancel for FOLLOWERS
//       expectations (fd/failure_detector.cpp).
//   pbft_overprovisioned_split.json — pbft history divergence: 2f+1
//       certificates do not intersect when n > 3f+1, so a partitioned
//       n=9 f=1 cluster committed diverging histories. Fixed by the
//       ceil((n+f+1)/2) quorum (pbft/replica.hpp).
//   xpaxos_leader_crash_pipeline.json — request resurrection under the
//       pipelined/batched commit path: a never-committed PREPARE for
//       (client, seq) left at slot k after a lost view change could be
//       merged alongside the retransmitted request's new slot by a later
//       NEWVIEW, executing the request twice and diverging replica
//       digests. Fixed by per-(client, seq) highest-view dedup in
//       NEWVIEW assembly plus the executed-reply cache
//       (xpaxos/replica.cpp). The schedule kills the view-1 leader
//       mid-run with 16-deep pipelining live; every acked op must
//       survive the view change.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "scenario/runner.hpp"
#include "scenario/schedule.hpp"

namespace qsel::scenario {
namespace {

Schedule load(const std::string& name) {
  const std::string path = std::string(QSEL_CORPUS_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing corpus file " << path;
  std::ostringstream text;
  text << in.rdbuf();
  const auto schedule = Schedule::from_json(text.str());
  EXPECT_TRUE(schedule.has_value()) << path << " does not parse";
  EXPECT_EQ(schedule->validate(), std::nullopt) << path;
  return *schedule;
}

TEST(CorpusReplayTest, GroupMuxWedgeStaysFixed) {
  const Schedule schedule = load("groupmux_wedge.json");
  ASSERT_GT(schedule.mux_clients, 0) << "wedge must exercise the mux";
  ASSERT_GE(schedule.min_final_epoch, Epoch{2})
      << "wedge must assert crash -> no-IS -> advance-epoch";
  const RunResult result = run_schedule(schedule);
  EXPECT_TRUE(result.report.ok()) << result.report.to_string();
  EXPECT_GE(result.max_epoch, Epoch{2});
}

TEST(CorpusReplayTest, FsLivelockStaysFixed) {
  const Schedule schedule = load("fs_livelock.json");
  ASSERT_EQ(schedule.protocol, Protocol::kFollowerSelection);
  const RunResult result = run_schedule(schedule);
  EXPECT_TRUE(result.report.ok()) << result.report.to_string();
  // The live-lock burned one epoch per failure-detection round forever
  // (epoch > 1000 by quiet_start); the fix converges within a handful.
  EXPECT_LE(result.max_epoch, Epoch{64});
}

TEST(CorpusReplayTest, PbftOverprovisionedSplitStaysFixed) {
  const Schedule schedule = load("pbft_overprovisioned_split.json");
  ASSERT_EQ(schedule.protocol, Protocol::kPbft);
  ASSERT_GT(static_cast<int>(schedule.n), 3 * schedule.f + 1)
      << "reproducer must be over-provisioned (n > 3f+1)";
  const RunResult result = run_schedule(schedule);
  EXPECT_TRUE(result.report.ok()) << result.report.to_string();
}

TEST(CorpusReplayTest, XpaxosLeaderCrashPipelineStaysFixed) {
  const Schedule schedule = load("xpaxos_leader_crash_pipeline.json");
  ASSERT_EQ(schedule.protocol, Protocol::kXPaxos);
  const RunResult result = run_schedule(schedule);
  EXPECT_TRUE(result.report.ok()) << result.report.to_string();
  // The crash must actually depose the leader...
  EXPECT_GE(result.view_changes, 1u);
  // ...and no acked op may be lost or doubled across it: the client
  // retransmits through the view change, so with n - 1 > 2f replicas
  // left every request commits exactly once before quiescence.
  EXPECT_EQ(result.observations.completed_requests, schedule.requests);
}

}  // namespace
}  // namespace qsel::scenario
