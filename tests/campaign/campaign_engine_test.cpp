// Campaign engine contract: materialization strips exactly what each
// protocol's validate() rejects, campaigns are a pure function of their
// config (bit-identical JSON across runs), corpus seeds establish the
// baseline without consuming budget, and the bake-off table covers every
// configured protocol.
#include <gtest/gtest.h>

#include <string>

#include "campaign/engine.hpp"
#include "campaign/mutator.hpp"
#include "scenario/schedule.hpp"

namespace qsel::campaign {
namespace {

using scenario::FaultAction;
using scenario::FaultKind;
using scenario::Protocol;
using scenario::Schedule;

// Everything qs tolerates that the SMR baselines reject: byzantine
// processes with a suspicion injection, plus a crash/restart pair.
// (A group mux would round out the set but restart is not modelled
// behind one — mux retention gets its own base below.)
Schedule rich_base() {
  Schedule base;
  base.protocol = Protocol::kQuorumSelection;
  base.n = 5;
  base.f = 2;
  base.seed = 7;
  base.byzantine = ProcessSet{0};
  base.heartbeat_period = 5'000'000;
  base.actions.push_back(
      {100'000'000, FaultKind::kInjectSuspicion, 0, 1, 0});
  base.actions.push_back({200'000'000, FaultKind::kCrash, 4, kNoProcess, 0});
  base.actions.push_back(
      {400'000'000, FaultKind::kRestart, 4, kNoProcess, 0});
  EXPECT_EQ(base.validate(), std::nullopt) << base.summary();
  return base;
}

TEST(MaterializeTest, QsKeepsTheBaseShape) {
  const Schedule base = rich_base();
  const auto variant = materialize(base, Protocol::kQuorumSelection);
  ASSERT_TRUE(variant.has_value());
  EXPECT_EQ(variant->n, base.n);
  EXPECT_EQ(variant->actions.size(), base.actions.size());
  EXPECT_EQ(variant->byzantine, base.byzantine);
}

TEST(MaterializeTest, QsKeepsTheMuxAndSmrStripsIt) {
  Schedule base;
  base.protocol = Protocol::kQuorumSelection;
  base.n = 4;
  base.f = 1;
  base.mux_clients = 2;
  base.min_final_epoch = 2;
  base.actions.push_back({200'000'000, FaultKind::kCrash, 3, kNoProcess, 0});
  ASSERT_EQ(base.validate(), std::nullopt) << base.summary();
  const auto qs = materialize(base, Protocol::kQuorumSelection);
  ASSERT_TRUE(qs.has_value());
  EXPECT_EQ(qs->mux_clients, base.mux_clients);
  EXPECT_EQ(qs->min_final_epoch, base.min_final_epoch);
  const auto pbft = materialize(base, Protocol::kPbft);
  ASSERT_TRUE(pbft.has_value());
  EXPECT_EQ(pbft->mux_clients, 0u);
}

TEST(MaterializeTest, SmrStripsByzantineAndInjections) {
  const Schedule base = rich_base();
  for (const Protocol protocol : {Protocol::kBChain, Protocol::kPbft}) {
    const auto variant = materialize(base, protocol);
    ASSERT_TRUE(variant.has_value());
    EXPECT_TRUE(variant->byzantine.empty());
    EXPECT_EQ(variant->mux_clients, 0u);
    EXPECT_EQ(variant->min_final_epoch, Epoch{0});
    EXPECT_GE(variant->requests, 10u);
    for (const FaultAction& action : variant->actions) {
      EXPECT_NE(action.kind, FaultKind::kInjectSuspicion);
      EXPECT_NE(action.kind, FaultKind::kRestart);
    }
    EXPECT_EQ(variant->validate(), std::nullopt);
  }
}

TEST(MaterializeTest, SmrRequestCountIsDeterministicInTheBase) {
  const Schedule base = rich_base();
  const auto a = materialize(base, Protocol::kPbft);
  const auto b = materialize(base, Protocol::kPbft);
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(a->requests, b->requests);
}

TEST(MaterializeTest, NonQsBumpsNToTheProtocolFloor) {
  Schedule base = rich_base();  // n=5, f=2: below the 3f+1=7 floor
  for (const Protocol protocol :
       {Protocol::kFollowerSelection, Protocol::kBChain, Protocol::kPbft}) {
    const auto variant = materialize(base, protocol);
    ASSERT_TRUE(variant.has_value());
    EXPECT_EQ(variant->n, 7u);
  }
}

TEST(MaterializeTest, ImpossibleFloorIsNotMaterializable) {
  Schedule base = rich_base();
  base.byzantine = {};
  base.actions.clear();
  base.f = 22;  // 3f+1 = 67 > kMaxProcesses
  base.n = 45;
  EXPECT_FALSE(materialize(base, Protocol::kPbft).has_value());
}

TEST(MaterializeTest, PartitionedSmrKeepsAHeartbeat) {
  Schedule base;
  base.protocol = Protocol::kQuorumSelection;
  base.n = 4;
  base.f = 1;
  base.heartbeat_period = 5'000'000;
  base.actions.push_back({100'000'000, FaultKind::kPartition, kNoProcess,
                          kNoProcess, 0b0011});
  base.actions.push_back({300'000'000, FaultKind::kHeal, kNoProcess,
                          kNoProcess, 0});
  ASSERT_EQ(base.validate(), std::nullopt);
  const auto variant = materialize(base, Protocol::kPbft);
  ASSERT_TRUE(variant.has_value());
  EXPECT_GT(variant->heartbeat_period, 0u);
}

CampaignConfig small_config(bool guided, std::uint64_t seed = 3) {
  CampaignConfig config;
  config.budget = 3;
  config.seed = seed;
  config.guided = guided;
  return config;
}

TEST(CampaignTest, TrajectoryAndJsonAreDeterministic) {
  const CampaignConfig config = small_config(/*guided=*/true);
  const CampaignResult first = run_campaign(config);
  const CampaignResult second = run_campaign(config);
  EXPECT_EQ(first.to_json(config), second.to_json(config));
  EXPECT_EQ(first.bakeoff_table(config), second.bakeoff_table(config));
  ASSERT_EQ(first.candidates.size(), second.candidates.size());
  for (std::size_t i = 0; i < first.candidates.size(); ++i) {
    EXPECT_EQ(first.candidates[i].signature, second.candidates[i].signature);
    EXPECT_EQ(first.candidates[i].base.to_json(),
              second.candidates[i].base.to_json());
  }
}

TEST(CampaignTest, SeedsEstablishBaselineWithoutConsumingBudget) {
  CampaignConfig config = small_config(/*guided=*/true);
  config.budget = 0;
  Schedule seed_schedule;
  seed_schedule.protocol = Protocol::kQuorumSelection;
  seed_schedule.n = 4;
  seed_schedule.f = 1;
  ASSERT_EQ(seed_schedule.validate(), std::nullopt);
  config.corpus_seeds.push_back(seed_schedule);

  const CampaignResult result = run_campaign(config);
  ASSERT_EQ(result.candidates.size(), 1u);
  EXPECT_EQ(result.candidates[0].reason, "seed");
  EXPECT_TRUE(result.candidates[0].kept);
  EXPECT_EQ(result.seed_signatures, 1u);
  EXPECT_EQ(result.distinct_signatures, 1u);
  EXPECT_EQ(result.kept, 0u);  // counts only budgeted keeps
  EXPECT_EQ(result.violations, 0u);
}

TEST(CampaignTest, EveryCandidateRunsEveryConfiguredProtocol) {
  const CampaignConfig config = small_config(/*guided=*/false);
  const CampaignResult result = run_campaign(config);
  ASSERT_EQ(result.candidates.size(), config.budget);
  for (const Candidate& candidate : result.candidates) {
    ASSERT_EQ(candidate.outcomes.size(), config.protocols.size());
    for (std::size_t p = 0; p < config.protocols.size(); ++p)
      EXPECT_EQ(candidate.outcomes[p].protocol, config.protocols[p]);
  }
}

TEST(CampaignTest, BakeoffTableHasARowPerProtocol) {
  const CampaignConfig config = small_config(/*guided=*/true);
  const CampaignResult result = run_campaign(config);
  const std::string table = result.bakeoff_table(config);
  for (const Protocol protocol : config.protocols)
    EXPECT_NE(table.find(std::string("| ") +
                         std::string(scenario::protocol_name(protocol)) +
                         " |"),
              std::string::npos)
        << table;
}

TEST(CampaignTest, CleanProtocolsReportNoViolations) {
  const CampaignResult result =
      run_campaign(small_config(/*guided=*/true, /*seed=*/1));
  EXPECT_EQ(result.violations, 0u);
  for (const Candidate& candidate : result.candidates)
    for (const ProtocolOutcome& out : candidate.outcomes)
      EXPECT_TRUE(out.violated.empty())
          << candidate.base.summary() << " violated "
          << out.violated.front();
}

}  // namespace
}  // namespace qsel::campaign
