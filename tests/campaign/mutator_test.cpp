// Mutation determinism and sanity: mutate() is a pure function of
// (parent, other, rng state), its output differs from the parent often
// enough to search, and the engine's validate-retry loop has valid
// candidates to find.
#include <gtest/gtest.h>

#include "campaign/mutator.hpp"
#include "common/rng.hpp"
#include "scenario/generator.hpp"

namespace qsel::campaign {
namespace {

using scenario::Protocol;
using scenario::Schedule;

TEST(MutatorTest, SameRngStateSameMutant) {
  const scenario::ScheduleGenerator generator({});
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Schedule parent = generator.generate(Protocol::kQuorumSelection,
                                               seed);
    const Schedule other =
        generator.generate(Protocol::kQuorumSelection, seed + 100);
    Rng rng_a(seed * 977);
    Rng rng_b(seed * 977);
    const Schedule mutant_a = mutate(parent, other, rng_a);
    const Schedule mutant_b = mutate(parent, other, rng_b);
    EXPECT_EQ(mutant_a.to_json(), mutant_b.to_json());
    EXPECT_EQ(rng_a(), rng_b()) << "rng consumption diverged";
  }
}

TEST(MutatorTest, MutantsExploreBeyondTheParent) {
  const scenario::ScheduleGenerator generator({});
  const Schedule parent = generator.generate(Protocol::kQuorumSelection, 42);
  const Schedule other = generator.generate(Protocol::kQuorumSelection, 43);
  Rng rng(1);
  int changed = 0;
  for (int i = 0; i < 50; ++i)
    if (mutate(parent, other, rng).to_json() != parent.to_json()) ++changed;
  EXPECT_GE(changed, 25) << "mutation is a near-no-op";
}

TEST(MutatorTest, ValidMutantReachableWithinRetryBudget) {
  // The engine retries up to 8 mutations before falling back to a fresh
  // draw; across many parents a valid mutant must usually exist well
  // within that budget.
  const scenario::ScheduleGenerator generator({});
  Rng rng(7);
  int found = 0;
  constexpr int kParents = 30;
  for (std::uint64_t seed = 1; seed <= kParents; ++seed) {
    const Schedule parent = generator.generate(Protocol::kQuorumSelection,
                                               seed);
    const Schedule other =
        generator.generate(Protocol::kQuorumSelection, 1000 - seed);
    for (int attempt = 0; attempt < 8; ++attempt) {
      if (!mutate(parent, other, rng).validate().has_value()) {
        ++found;
        break;
      }
    }
  }
  EXPECT_GE(found, kParents - 2);
}

}  // namespace
}  // namespace qsel::campaign
