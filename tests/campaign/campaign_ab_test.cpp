// Budget-matched A/B: the coverage-guided campaign must earn its keep.
//
// Same seed, same budget, same (empty) seed corpus — the only difference
// is guided vs. pure-random candidate generation. Guidance wins when it
// finds strictly more distinct coverage signatures: mutation of kept
// schedules plus the static-novelty pre-filter (campaign/engine.cpp) must
// beat fresh generator draws at exploring schedule space.
//
// The configuration (seed 1, budget 40) is pinned from a measured sweep:
// at this point guided finds 9 distinct signatures to random's 7. The
// engine is deterministic in (config, seed), so the numbers cannot drift
// without a deliberate engine/mutator/generator change — if this test
// fails after such a change, re-run the sweep (seeds 1..3, budget 40) and
// re-pin a seed where guidance still strictly wins; if none exists, the
// change regressed the search and should be reconsidered.
//
// Budget 40 across four protocols is slow; the test carries the "long"
// label and stays out of tier-1.
#include <gtest/gtest.h>

#include "campaign/engine.hpp"

namespace qsel::campaign {
namespace {

CampaignResult run_mode(bool guided) {
  CampaignConfig config;
  config.budget = 40;
  config.seed = 1;
  config.guided = guided;
  return run_campaign(config);
}

TEST(CampaignAbTest, GuidedBeatsRandomAtMatchedBudget) {
  const CampaignResult guided = run_mode(true);
  const CampaignResult random = run_mode(false);

  EXPECT_GT(guided.distinct_signatures, random.distinct_signatures)
      << "guided " << guided.distinct_signatures << " vs random "
      << random.distinct_signatures;

  // Neither mode may trip an oracle: every violation a campaign can reach
  // at this budget has been minimized, pinned under corpus/ and fixed.
  EXPECT_EQ(guided.violations, 0u);
  EXPECT_EQ(random.violations, 0u);

  // The qs adversary axis: no campaign may force more per-epoch quorums
  // than the Theorem 4 adversary target C(f+2,2) for the f it ran at.
  EXPECT_LE(guided.qs_worst_epoch_quorums, guided.qs_theorem4_target);
  EXPECT_LE(random.qs_worst_epoch_quorums, random.qs_theorem4_target);
}

}  // namespace
}  // namespace qsel::campaign
