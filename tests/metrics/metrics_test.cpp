#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "metrics/histogram.hpp"
#include "metrics/message_stats.hpp"
#include "metrics/table.hpp"

namespace qsel::metrics {
namespace {

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 5.0);
  EXPECT_EQ(h.mean(), 3.0);
  EXPECT_EQ(h.median(), 3.0);
  EXPECT_EQ(h.quantile(0.0), 1.0);
  EXPECT_EQ(h.quantile(1.0), 5.0);
}

TEST(HistogramTest, RecordAfterQueryKeepsOrderCorrect) {
  Histogram h;
  h.record(10.0);
  EXPECT_EQ(h.median(), 10.0);  // forces the sort
  h.record(0.0);
  h.record(20.0);
  EXPECT_EQ(h.median(), 10.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 20.0);
}

TEST(HistogramTest, EmptyThrows) {
  Histogram h;
  EXPECT_THROW(h.mean(), std::invalid_argument);
  EXPECT_THROW(h.quantile(0.5), std::invalid_argument);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.record(1.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(MessageStatsTest, CountsByTypeLinkSender) {
  MessageStats stats;
  stats.record_send(0, 1, "a", 10);
  stats.record_send(0, 1, "a", 10);
  stats.record_send(1, 0, "b", 5);
  EXPECT_EQ(stats.total_messages(), 3u);
  EXPECT_EQ(stats.total_bytes(), 25u);
  EXPECT_EQ(stats.by_type("a"), 2u);
  EXPECT_EQ(stats.by_type("b"), 1u);
  EXPECT_EQ(stats.by_type("missing"), 0u);
  EXPECT_EQ(stats.by_link(0, 1), 2u);
  EXPECT_EQ(stats.by_link(1, 0), 1u);
  EXPECT_EQ(stats.by_link(0, 2), 0u);
  EXPECT_EQ(stats.by_sender(0), 2u);
  stats.reset();
  EXPECT_EQ(stats.total_messages(), 0u);
  EXPECT_EQ(stats.by_type("a"), 0u);
}

TEST(TableTest, AlignsColumns) {
  Table table({"id", "name"});
  table.row(1, "long-value");
  table.row(100, "x");
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| id  | name       |"), std::string::npos) << out;
  EXPECT_NE(out.find("| 1   | long-value |"), std::string::npos) << out;
  EXPECT_NE(out.find("| 100 | x          |"), std::string::npos) << out;
}

TEST(TableTest, RowArityChecked) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

}  // namespace
}  // namespace qsel::metrics
