// ShardMap range algebra at the boundaries: decode-time rejection of
// overlapping / degenerate / mis-ordered range sets, kDrop subtraction
// remainders on the ShardKv owned set, and forward-only epoch fencing when
// a COMMIT_MOVE is replayed (a recovered config group re-applies its log;
// the duplicate must not burn a fencing epoch).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "net/codec.hpp"
#include "shard/shard_kv.hpp"
#include "shard/shard_map.hpp"
#include "smr/typed_result.hpp"

namespace qsel::shard {
namespace {

std::string encode_ranges(std::uint64_t epoch,
                          const std::vector<ShardRange>& ranges) {
  net::Encoder enc;
  enc.u64(epoch);
  enc.u32(static_cast<std::uint32_t>(ranges.size()));
  for (const ShardRange& r : ranges) {
    enc.str(r.lo);
    enc.str(r.hi);
    enc.u32(r.group);
    enc.u8(r.migrating ? 1 : 0);
  }
  const auto bytes = std::move(enc).take();
  return std::string(bytes.begin(), bytes.end());
}

TEST(ShardMapAlgebraTest, AdjacentRangesDecode) {
  // [ "", "m" ) and [ "m", "" ) touch exactly at the boundary — legal.
  const auto map = ShardMap::decode_from_string(
      encode_ranges(3, {{"", "m", 1, false}, {"m", "", 2, false}}));
  ASSERT_TRUE(map.has_value());
  EXPECT_EQ(map->ranges.size(), 2u);
}

TEST(ShardMapAlgebraTest, DecodeRejectsOverlappingAdjacentRanges) {
  // Sorted by lo but [ "", "m" ) and [ "l", "" ) overlap on ["l", "m").
  EXPECT_FALSE(ShardMap::decode_from_string(
                   encode_ranges(3, {{"", "m", 1, false}, {"l", "", 2, false}}))
                   .has_value());
}

TEST(ShardMapAlgebraTest, DecodeRejectsUnboundedRangeNotLast) {
  // hi = "" means unbounded above; nothing may follow it.
  EXPECT_FALSE(ShardMap::decode_from_string(
                   encode_ranges(3, {{"", "", 1, false}, {"m", "z", 2, false}}))
                   .has_value());
}

TEST(ShardMapAlgebraTest, DecodeRejectsEmptyOrInvertedRange) {
  EXPECT_FALSE(
      ShardMap::decode_from_string(encode_ranges(3, {{"m", "m", 1, false}}))
          .has_value());
  EXPECT_FALSE(
      ShardMap::decode_from_string(encode_ranges(3, {{"m", "g", 1, false}}))
          .has_value());
}

TEST(ShardMapAlgebraTest, DuplicateCommitMoveKeepsEpoch) {
  ShardMapMachine machine;
  machine.apply_encoded(MapOp{MapOpType::kAssign, "", "m", 1}.encode());
  machine.apply_encoded(MapOp{MapOpType::kPrepareMove, "", "", 2}.encode());

  const auto commit = MapOp{MapOpType::kCommitMove, "", "", 2}.encode();
  const auto first = smr::TypedResult::parse(machine.apply_encoded(commit));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->value, "committed");
  const std::uint64_t epoch = machine.map().epoch;

  // Replayed duplicate (same lo, same destination, no move in flight):
  // ownership is already correct, the fencing epoch must not advance.
  const auto replayed = smr::TypedResult::parse(machine.apply_encoded(commit));
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(replayed->value, "noop");
  EXPECT_EQ(machine.map().epoch, epoch);
  EXPECT_EQ(machine.map().ranges[0].group, 2u);

  // A genuine new move over the same range still bumps.
  machine.apply_encoded(MapOp{MapOpType::kPrepareMove, "", "", 3}.encode());
  const auto next = smr::TypedResult::parse(machine.apply_encoded(
      MapOp{MapOpType::kCommitMove, "", "", 3}.encode()));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->value, "committed");
  EXPECT_EQ(machine.map().epoch, epoch + 1);
}

// --- kDrop subtraction remainders -------------------------------------

using Owned = std::vector<std::pair<std::string, std::string>>;

ShardKv make_kv(Owned owned) {
  ShardKv::Config config;
  config.initial_epoch = 1;
  config.owned = std::move(owned);
  return ShardKv(std::move(config));
}

void drop(ShardKv& kv, const std::string& lo, const std::string& hi,
          std::uint64_t epoch_new) {
  const auto result = smr::TypedResult::parse(
      kv.apply_encoded(ShardKvOp::drop(/*migration_id=*/1, epoch_new, lo, hi)));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->value, "dropped");
}

TEST(ShardKvSubtractionTest, ExactRangeDisappears) {
  ShardKv kv = make_kv({{"a", "m"}});
  drop(kv, "a", "m", 2);
  EXPECT_TRUE(kv.owned().empty());
  EXPECT_EQ(kv.config_epoch(), 2u);
}

TEST(ShardKvSubtractionTest, MiddleDropLeavesBothRemainders) {
  ShardKv kv = make_kv({{"a", "z"}});
  drop(kv, "g", "m", 2);
  EXPECT_EQ(kv.owned(), (Owned{{"a", "g"}, {"m", "z"}}));
  EXPECT_TRUE(kv.owns("a"));
  EXPECT_FALSE(kv.owns("g"));   // drop lo is inclusive
  EXPECT_TRUE(kv.owns("m"));    // drop hi is exclusive
}

TEST(ShardKvSubtractionTest, DropAtLowBoundaryLeavesUpperRemainder) {
  ShardKv kv = make_kv({{"a", "z"}});
  drop(kv, "a", "g", 2);
  EXPECT_EQ(kv.owned(), (Owned{{"g", "z"}}));
}

TEST(ShardKvSubtractionTest, DropAtHighBoundaryLeavesLowerRemainder) {
  ShardKv kv = make_kv({{"a", "z"}});
  drop(kv, "g", "z", 2);
  EXPECT_EQ(kv.owned(), (Owned{{"a", "g"}}));
}

TEST(ShardKvSubtractionTest, UnboundedRangeSplitsCorrectly) {
  ShardKv kv = make_kv({{"m", ""}});
  drop(kv, "m", "t", 2);
  EXPECT_EQ(kv.owned(), (Owned{{"t", ""}}));
  drop(kv, "x", "", 3);  // drop the unbounded tail of the remainder
  EXPECT_EQ(kv.owned(), (Owned{{"t", "x"}}));
}

TEST(ShardKvSubtractionTest, DisjointDropLeavesOwnedUntouched) {
  ShardKv kv = make_kv({{"a", "g"}, {"m", "z"}});
  drop(kv, "g", "m", 2);  // the gap between the two owned ranges
  EXPECT_EQ(kv.owned(), (Owned{{"a", "g"}, {"m", "z"}}));
}

TEST(ShardKvSubtractionTest, DropSpanningTwoRangesTrimsBoth) {
  ShardKv kv = make_kv({{"a", "g"}, {"m", "z"}});
  drop(kv, "c", "t", 2);
  EXPECT_EQ(kv.owned(), (Owned{{"a", "c"}, {"t", "z"}}));
}

}  // namespace
}  // namespace qsel::shard
