// Sharded-cluster soak (tools/ci.sh stage 7): routing-client load on
// both shards, one live whole-shard migration under that load, and a
// whole-node kill/restart mid-migration — the scenario the sanitizers
// need to see, because the teardown/rebuild path (replica destructors,
// timer cancellation, socket shutdown) is where lifetime bugs live.
//
// QSEL_SHARD_SOAK_OPS overrides the per-client op count (default 30).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "shard/shard_cluster.hpp"

namespace qsel::shard {
namespace {

constexpr std::uint64_t kSecond = 1'000'000'000;

std::size_t ops_per_client() {
  if (const char* env = std::getenv("QSEL_SHARD_SOAK_OPS"))
    return static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  return 30;
}

// QSEL_SHARD_SOAK_LOG=1 turns on protocol logging plus a periodic state
// dump — the first thing to reach for when the soak times out on a
// loaded machine.
bool soak_logging() { return std::getenv("QSEL_SHARD_SOAK_LOG") != nullptr; }

void dump_state(ShardCluster& cluster, std::size_t mover_next,
                std::size_t mixed_next, bool migrated) {
  std::fprintf(stderr, "soak: mover=%zu mixed=%zu migrated=%d\n", mover_next,
               mixed_next, migrated ? 1 : 0);
  for (ProcessId i = 0; i < ShardCluster::kRoutingClients; ++i) {
    RoutingClient& client = cluster.client(i);
    std::fprintf(stderr,
                 "soak:   client%u done=%llu wrong=%llu frozen=%llu "
                 "stale=%llu\n",
                 unsigned(i),
                 static_cast<unsigned long long>(client.completed()),
                 static_cast<unsigned long long>(
                     client.rejects(smr::ResultStatus::kWrongGroup)),
                 static_cast<unsigned long long>(
                     client.rejects(smr::ResultStatus::kFrozen)),
                 static_cast<unsigned long long>(
                     client.rejects(smr::ResultStatus::kStaleEpoch)));
  }
  for (ProcessId node = 0; node < ShardCluster::kNodes; ++node) {
    for (const GroupId group :
         {ShardCluster::kConfigGroup, ShardCluster::kLowGroup,
          ShardCluster::kHighGroup}) {
      xpaxos::Replica* replica = cluster.replica(node, group);
      if (replica == nullptr) continue;
      std::fprintf(
          stderr,
          "soak:   p%u g%u view=%llu quorum=%s leader=%u %s exec=%llu "
          "suspects=%s\n",
          unsigned(node), unsigned(group),
          static_cast<unsigned long long>(replica->view()),
          replica->active_quorum().to_string().c_str(),
          unsigned(replica->leader()),
          replica->status() == xpaxos::Replica::Status::kNormal ? "normal"
                                                                : "viewchange",
          static_cast<unsigned long long>(replica->requests_executed()),
          replica->failure_detector().suspected().to_string().c_str());
    }
  }
}

struct Workload {
  RoutingClient& client;
  std::map<std::string, std::string>& acked;
  std::vector<std::pair<std::string, std::string>> queue;
  std::size_t next = 0;

  void kick() {
    if (next >= queue.size()) return;
    const auto [key, value] = queue[next++];
    client.put(key, value, [this, key = key, value = value](
                               const smr::Outcome& outcome) {
      ASSERT_EQ(outcome.status, smr::ResultStatus::kOk) << "put " << key;
      acked[key] = value;
      kick();
    });
  }

  bool done() const { return next >= queue.size() && client.idle(); }
};

TEST(ShardSoakTest, MigrationSurvivesNodeKillAndRestartUnderLoad) {
  if (soak_logging())
    set_log_level(std::strtoul(std::getenv("QSEL_SHARD_SOAK_LOG"), nullptr,
                               10) >= 2
                      ? LogLevel::kDebug
                      : LogLevel::kInfo);
  const std::string store_root =
      testing::TempDir() + "qsel_shard_soak_store";
  std::filesystem::remove_all(store_root);
  std::filesystem::create_directories(store_root);

  ShardClusterConfig config;
  config.seed = 23;
  config.chunk_limit = 4;
  config.store_root = store_root;
  ShardCluster cluster(config);
  ASSERT_TRUE(cluster.start());

  const std::size_t ops = ops_per_client();
  std::map<std::string, std::string> acked;
  Workload mover{cluster.client(0), acked, {}};
  Workload mixed{cluster.client(1), acked, {}};
  for (std::size_t i = 0; i < ops; ++i) {
    mover.queue.emplace_back("a" + std::to_string(i), "v" + std::to_string(i));
    mixed.queue.emplace_back(i % 2 == 0 ? "b" + std::to_string(i)
                                        : "z" + std::to_string(i),
                             "w" + std::to_string(i));
  }
  mover.kick();
  mixed.kick();

  // Some load lands, then the whole low shard starts moving to group 2.
  ASSERT_TRUE(cluster.run_until(
      [&] { return mover.next >= 4 && mixed.next >= 4; }, 30 * kSecond));
  MigrationCoordinator::Result result;
  bool migrated = false;
  cluster.coordinator().move_range(
      /*migration_id=*/1, ShardCluster::kLowGroup, ShardCluster::kHighGroup,
      "", config.split, [&](const MigrationCoordinator::Result& r) {
        result = r;
        migrated = true;
      });

  // Mid-migration = the freeze has committed on a source replica but the
  // hand-off has not finished. At that instant, kill a whole node — all
  // three of its replicas, sockets and timers.
  ASSERT_TRUE(cluster.run_until(
      [&] {
        const ShardKv* source =
            cluster.shard_kv(0, ShardCluster::kLowGroup);
        return migrated || (source != nullptr && source->is_frozen("a0"));
      },
      60 * kSecond));
  constexpr ProcessId kVictim = 3;
  cluster.crash_node(kVictim);

  // The survivors (3 of 4 per group, f=1) must finish the migration and
  // drain both workloads, view-changing past the dead node wherever it
  // sat in an active quorum.
  bool drained = false;
  for (int slice = 0; slice < 36 && !drained; ++slice) {
    drained = cluster.run_until(
        [&] { return migrated && mover.done() && mixed.done(); },
        5 * kSecond);
    if (!drained && soak_logging())
      dump_state(cluster, mover.next, mixed.next, migrated);
  }
  ASSERT_TRUE(drained);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.new_epoch, 4u);
  EXPECT_EQ(acked.size(), 2 * ops);

  // Restart the node on its original port: quorum-selection state comes
  // back from its WAL store, the SMR layer rejoins as a laggard.
  cluster.restart_node(kVictim);
  ASSERT_TRUE(cluster.run_until(
      [&] { return cluster.fully_connected(); }, 60 * kSecond));

  // Zero acknowledged-op loss, end to end: every acked (key, value) is
  // readable through a routing client after migration + crash + restart.
  for (const auto& [key, value] : acked) {
    std::string got;
    bool done = false;
    cluster.client(1).get(key, [&](const smr::Outcome& outcome) {
      got = outcome.value;
      done = true;
    });
    ASSERT_TRUE(cluster.run_until([&] { return done; }, 30 * kSecond));
    EXPECT_EQ(got, value) << key;
  }

  std::filesystem::remove_all(store_root);
}

}  // namespace
}  // namespace qsel::shard
