// ShardMap + ShardMapMachine: lookup over sorted ranges, codec
// round-trips with malformed-input rejection, and the epoch discipline of
// the map ops (ASSIGN and COMMIT_MOVE bump, PREPARE_MOVE does not).
#include "shard/shard_map.hpp"

#include <gtest/gtest.h>

#include "smr/typed_result.hpp"

namespace qsel::shard {
namespace {

ShardMap two_shards() {
  ShardMap map;
  map.epoch = 3;
  map.ranges = {{"", "m", 1, false}, {"m", "", 2, false}};
  return map;
}

TEST(ShardMapTest, LookupRoutesByRange) {
  const ShardMap map = two_shards();
  ASSERT_NE(map.lookup("apple"), nullptr);
  EXPECT_EQ(map.lookup("apple")->group, 1u);
  EXPECT_EQ(map.lookup("m")->group, 2u);       // lo is inclusive
  EXPECT_EQ(map.lookup("zebra")->group, 2u);   // hi "" = unbounded
  EXPECT_EQ(map.lookup("")->group, 1u);
}

TEST(ShardMapTest, LookupOutsideAnyRangeIsNull) {
  ShardMap map;
  map.ranges = {{"g", "m", 1, false}};
  EXPECT_EQ(map.lookup("a"), nullptr);
  EXPECT_EQ(map.lookup("m"), nullptr);  // hi is exclusive
  EXPECT_NE(map.lookup("g"), nullptr);
}

TEST(ShardMapTest, StringCodecRoundTrips) {
  const ShardMap map = two_shards();
  const auto decoded = ShardMap::decode_from_string(map.encode_to_string());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, map);
}

TEST(ShardMapTest, DecodeRejectsUnsortedRanges) {
  ShardMap map;
  map.ranges = {{"m", "", 2, false}, {"", "m", 1, false}};  // wrong order
  net::Encoder enc;
  enc.u64(map.epoch);
  enc.u32(2);
  for (const ShardRange& r : map.ranges) {
    enc.str(r.lo);
    enc.str(r.hi);
    enc.u32(r.group);
    enc.u8(0);
  }
  const auto bytes = std::move(enc).take();
  EXPECT_FALSE(ShardMap::decode_from_string(
                   std::string(bytes.begin(), bytes.end()))
                   .has_value());
  EXPECT_FALSE(ShardMap::decode_from_string("junk").has_value());
}

TEST(ShardMapMachineTest, AssignInsertsAndBumpsEpoch) {
  ShardMapMachine machine;
  EXPECT_EQ(machine.map().epoch, 1u);

  const auto op = MapOp{MapOpType::kAssign, "", "m", 1}.encode();
  const auto result = smr::TypedResult::parse(machine.apply_encoded(op));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->value, "assigned");
  EXPECT_EQ(result->epoch, 2u);
  EXPECT_EQ(machine.map().epoch, 2u);
  ASSERT_EQ(machine.map().ranges.size(), 1u);

  // Re-assigning the same lo replaces in place.
  machine.apply_encoded(MapOp{MapOpType::kAssign, "", "m", 2}.encode());
  ASSERT_EQ(machine.map().ranges.size(), 1u);
  EXPECT_EQ(machine.map().ranges[0].group, 2u);
  EXPECT_EQ(machine.map().epoch, 3u);
}

TEST(ShardMapMachineTest, MoveLifecycleBumpsOnCommitOnly) {
  ShardMapMachine machine;
  machine.apply_encoded(MapOp{MapOpType::kAssign, "", "m", 1}.encode());
  const std::uint64_t epoch = machine.map().epoch;

  auto prepared = smr::TypedResult::parse(machine.apply_encoded(
      MapOp{MapOpType::kPrepareMove, "", "", 2}.encode()));
  ASSERT_TRUE(prepared.has_value());
  EXPECT_EQ(prepared->value, "prepared");
  EXPECT_EQ(machine.map().epoch, epoch);  // no bump yet
  EXPECT_TRUE(machine.map().ranges[0].migrating);

  auto committed = smr::TypedResult::parse(machine.apply_encoded(
      MapOp{MapOpType::kCommitMove, "", "", 2}.encode()));
  ASSERT_TRUE(committed.has_value());
  EXPECT_EQ(committed->value, "committed");
  EXPECT_EQ(machine.map().epoch, epoch + 1);
  EXPECT_EQ(machine.map().ranges[0].group, 2u);
  EXPECT_FALSE(machine.map().ranges[0].migrating);

  // Preparing a move to the current owner is a no-op.
  auto noop = smr::TypedResult::parse(machine.apply_encoded(
      MapOp{MapOpType::kPrepareMove, "", "", 2}.encode()));
  ASSERT_TRUE(noop.has_value());
  EXPECT_EQ(noop->value, "noop");

  // Moves against an unknown range fail deterministically.
  auto missing = smr::TypedResult::parse(machine.apply_encoded(
      MapOp{MapOpType::kCommitMove, "zzz", "", 2}.encode()));
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->value, "no-such-range");
}

TEST(ShardMapMachineTest, GetReturnsTheEncodedMap) {
  ShardMapMachine machine;
  machine.apply_encoded(MapOp{MapOpType::kAssign, "", "m", 1}.encode());
  const auto result = smr::TypedResult::parse(
      machine.apply_encoded(MapOp{MapOpType::kGet, "", "", 0}.encode()));
  ASSERT_TRUE(result.has_value());
  const auto map = ShardMap::decode_from_string(result->value);
  ASSERT_TRUE(map.has_value());
  EXPECT_EQ(*map, machine.map());
}

TEST(ShardMapMachineTest, MalformedOpsAreDeterministicNoops) {
  ShardMapMachine machine;
  const auto digest = machine.state_digest();
  const std::vector<std::uint8_t> junk{0xff, 0xff};
  const auto result = smr::TypedResult::parse(machine.apply_encoded(junk));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->value, "<malformed>");
  EXPECT_EQ(machine.state_digest(), digest);
}

}  // namespace
}  // namespace qsel::shard
