// End-to-end acceptance for the sharded service (DESIGN.md §12), over
// real loopback TCP: routing clients committing on both shards, a live
// whole-shard migration under client load with zero acknowledged-op
// loss, and a quorum change in one group leaving the co-hosted groups'
// views untouched.
#include "shard/shard_cluster.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

namespace qsel::shard {
namespace {

constexpr std::uint64_t kSecond = 1'000'000'000;

/// Drives one RoutingClient through a scripted queue of puts, recording
/// each acknowledged (key, value) into a shared model. Each completion
/// submits the next op reentrantly, so the client stays saturated.
struct Workload {
  RoutingClient& client;
  std::map<std::string, std::string>& acked;
  std::vector<std::pair<std::string, std::string>> queue;
  std::size_t next = 0;

  void kick() {
    if (next >= queue.size()) return;
    const auto [key, value] = queue[next++];
    client.put(key, value, [this, key = key, value = value](
                               const smr::Outcome& outcome) {
      ASSERT_EQ(outcome.status, smr::ResultStatus::kOk) << "put " << key;
      acked[key] = value;
      kick();
    });
  }

  bool done() const { return next >= queue.size() && client.idle(); }
};

TEST(ShardClusterTest, ClientsCommitOnBothShards) {
  ShardClusterConfig config;
  config.seed = 42;
  ShardCluster cluster(config);
  ASSERT_TRUE(cluster.start());

  // One op per shard from each client, interleaved.
  std::map<std::string, std::string> acked;
  Workload low{cluster.client(0), acked, {{"apple", "1"}, {"banana", "2"}}};
  Workload high{cluster.client(1), acked, {{"zebra", "3"}, {"quince", "4"}}};
  low.kick();
  high.kick();
  ASSERT_TRUE(cluster.run_until(
      [&] { return low.done() && high.done(); }, 20 * kSecond));
  EXPECT_EQ(acked.size(), 4u);

  // Reads route to the owning shard and see the committed values.
  for (const auto& [key, value] : acked) {
    std::string got;
    bool done = false;
    cluster.client(0).get(key, [&](const smr::Outcome& outcome) {
      got = outcome.value;
      done = true;
    });
    ASSERT_TRUE(cluster.run_until([&] { return done; }, 10 * kSecond));
    EXPECT_EQ(got, value) << key;
  }

  // The data really is partitioned: low keys on group 1, high on group 2.
  const ShardKv* low_kv = cluster.shard_kv(0, ShardCluster::kLowGroup);
  const ShardKv* high_kv = cluster.shard_kv(0, ShardCluster::kHighGroup);
  ASSERT_NE(low_kv, nullptr);
  ASSERT_NE(high_kv, nullptr);
  EXPECT_TRUE(cluster.run_until(
      [&] {
        return low_kv->kv().get("apple").has_value() &&
               high_kv->kv().get("zebra").has_value();
      },
      10 * kSecond));
  EXPECT_FALSE(low_kv->kv().get("zebra").has_value());
  EXPECT_FALSE(high_kv->kv().get("apple").has_value());
}

TEST(ShardClusterTest, LiveMigrationUnderLoadLosesNoAcknowledgedOp) {
  ShardClusterConfig config;
  config.seed = 7;
  config.chunk_limit = 4;  // force several chunks
  ShardCluster cluster(config);
  ASSERT_TRUE(cluster.start());

  // Client 0 hammers the low shard (the range being moved); client 1
  // splits its writes across both shards.
  std::map<std::string, std::string> acked;
  Workload mover{cluster.client(0), acked, {}};
  Workload mixed{cluster.client(1), acked, {}};
  for (int i = 0; i < 24; ++i)
    mover.queue.emplace_back("a" + std::to_string(i), "v" + std::to_string(i));
  for (int i = 0; i < 12; ++i) {
    mixed.queue.emplace_back("b" + std::to_string(i), "w" + std::to_string(i));
    mixed.queue.emplace_back("z" + std::to_string(i), "x" + std::to_string(i));
  }
  mover.kick();
  mixed.kick();

  // Let some load land, then move the whole low shard to group 2 while
  // both clients keep writing into it.
  ASSERT_TRUE(cluster.run_until(
      [&] { return mover.next >= 4 && mixed.next >= 4; }, 20 * kSecond));
  MigrationCoordinator::Result result;
  bool migrated = false;
  cluster.coordinator().move_range(
      /*migration_id=*/1, ShardCluster::kLowGroup, ShardCluster::kHighGroup,
      "", config.split, [&](const MigrationCoordinator::Result& r) {
        result = r;
        migrated = true;
      });

  ASSERT_TRUE(cluster.run_until(
      [&] { return migrated && mover.done() && mixed.done(); },
      60 * kSecond));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.new_epoch, 4u);  // 1 + two assigns + this commit
  EXPECT_GT(result.keys_moved, 0u);
  EXPECT_GT(result.chunks, 1u);
  EXPECT_EQ(acked.size(), 48u);

  // Zero acknowledged-op loss: every acked (key, value) is readable
  // through a routing client after the hand-off.
  for (const auto& [key, value] : acked) {
    std::string got;
    bool done = false;
    cluster.client(1).get(key, [&](const smr::Outcome& outcome) {
      got = outcome.value;
      done = true;
    });
    ASSERT_TRUE(cluster.run_until([&] { return done; }, 10 * kSecond));
    EXPECT_EQ(got, value) << key;
  }

  // The destination group owns the moved range at the new epoch; the
  // source dropped it. Committed on the quorum — check one member that
  // has applied the hand-off ops.
  EXPECT_TRUE(cluster.run_until(
      [&] {
        const ShardKv* dest =
            cluster.shard_kv(0, ShardCluster::kHighGroup);
        const ShardKv* source =
            cluster.shard_kv(0, ShardCluster::kLowGroup);
        return dest != nullptr && source != nullptr &&
               dest->owns("a0") && dest->config_epoch() == 4 &&
               !source->owns("a0") && source->owned().empty();
      },
      20 * kSecond));

  // The freeze window actually bit: at least one client was bounced by
  // FROZEN or STALE_EPOCH and retried to completion.
  const std::uint64_t bounces =
      cluster.client(0).rejects(smr::ResultStatus::kFrozen) +
      cluster.client(0).rejects(smr::ResultStatus::kStaleEpoch) +
      cluster.client(0).rejects(smr::ResultStatus::kWrongGroup) +
      cluster.client(1).rejects(smr::ResultStatus::kFrozen) +
      cluster.client(1).rejects(smr::ResultStatus::kStaleEpoch) +
      cluster.client(1).rejects(smr::ResultStatus::kWrongGroup);
  EXPECT_GT(bounces, 0u);
}

TEST(ShardClusterTest, QuorumChangeInOneGroupDoesNotPerturbOthers) {
  ShardClusterConfig config;
  config.seed = 11;
  ShardCluster cluster(config);
  ASSERT_TRUE(cluster.start());

  // Commit one op per shard so every group is live before the fault.
  std::map<std::string, std::string> acked;
  Workload warmup{cluster.client(0), acked, {{"cat", "1"}, {"nut", "2"}}};
  warmup.kick();
  ASSERT_TRUE(cluster.run_until([&] { return warmup.done(); }, 20 * kSecond));

  // Kill a low-group replica that sits in the group's active quorum, so
  // the survivors are forced to reconfigure around it.
  const ProcessSet quorum =
      cluster.replica(0, ShardCluster::kLowGroup)->active_quorum();
  ProcessId victim = ShardCluster::kNodes;  // group-local rank == node id
  for (ProcessId rank = ShardCluster::kNodes; rank-- > 0;) {
    if (quorum.contains(rank) && rank != 0) {
      victim = rank;
      break;
    }
  }
  ASSERT_LT(victim, ShardCluster::kNodes);
  const ProcessId observer = victim == 0 ? 1 : 0;

  const ViewId high_view =
      cluster.replica(observer, ShardCluster::kHighGroup)->view();
  const ViewId config_view =
      cluster.replica(observer, ShardCluster::kConfigGroup)->view();

  ASSERT_TRUE(cluster.kill_group_replica(victim, ShardCluster::kLowGroup));

  // Failure detection is op-driven (expectations on PREPARE/COMMIT, no
  // idle heartbeats), so drive traffic through the wounded group: the
  // stalled commit is what turns the victim's silence into a suspicion,
  // Algorithm 1 then moves the quorum and the view change lets the op
  // finish. Interleave a high-shard op to show it commits undisturbed.
  Workload after{cluster.client(1), acked, {{"dog", "3"}, {"pig", "4"}}};
  after.kick();
  ASSERT_TRUE(cluster.run_until(
      [&] {
        const xpaxos::Replica* survivor =
            cluster.replica(observer, ShardCluster::kLowGroup);
        return after.done() && survivor != nullptr &&
               !survivor->active_quorum().contains(victim);
      },
      60 * kSecond));

  // Co-hosted groups never noticed: same views as before the kill, even
  // though they share every socket and timer wheel with the low group.
  EXPECT_EQ(cluster.replica(observer, ShardCluster::kHighGroup)->view(),
            high_view);
  EXPECT_EQ(cluster.replica(observer, ShardCluster::kConfigGroup)->view(),
            config_view);
}

}  // namespace
}  // namespace qsel::shard
