// ShardKv fencing and hand-off tests: the F1–F4 invariants, the freeze /
// snapshot / install / adopt / drop protocol including duplicate and
// reordered chunks, digest-verified adoption, and the determinism that
// makes every decision safe to take post-consensus.
#include "shard/shard_kv.hpp"

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "net/codec.hpp"
#include "smr/typed_result.hpp"

namespace qsel::shard {
namespace {

using smr::ResultStatus;
using smr::TypedResult;

std::vector<std::uint8_t> put(const std::string& key,
                              const std::string& value) {
  return app::Operation{app::OpType::kPut, key, value}.encode();
}

std::vector<std::uint8_t> get(const std::string& key) {
  return app::Operation{app::OpType::kGet, key, {}}.encode();
}

std::span<const std::uint8_t> as_span(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TypedResult apply_op(ShardKv& kv, const std::vector<std::uint8_t>& op) {
  const auto result = TypedResult::parse(kv.apply_encoded(op));
  EXPECT_TRUE(result.has_value()) << "untyped result from ShardKv";
  return result.value_or(TypedResult{});
}

ShardKv low_half(std::uint64_t epoch = 1) {
  ShardKv::Config config;
  config.initial_epoch = epoch;
  config.owned = {{"", "m"}};
  return ShardKv(std::move(config));
}

TEST(ShardKvFencingTest, StaleEpochRejectedBeforeAnythingElse) {
  ShardKv kv = low_half(/*epoch=*/5);
  // F1: even an op for a key we own, with a frozen-range miss, is fenced
  // on epoch first.
  const auto result =
      apply_op(kv, ShardKvOp::client_op(/*epoch=*/4, put("apple", "1")));
  EXPECT_EQ(result.status, ResultStatus::kStaleEpoch);
  EXPECT_EQ(result.epoch, 5u);
  EXPECT_EQ(kv.kv().size(), 0u);
}

TEST(ShardKvFencingTest, NewerEpochIsAccepted) {
  // The client refetched the map before this replica heard of the bump —
  // ownership still gates, so accepting is safe.
  ShardKv kv = low_half(/*epoch=*/5);
  const auto result =
      apply_op(kv, ShardKvOp::client_op(/*epoch=*/7, put("apple", "1")));
  EXPECT_EQ(result.status, ResultStatus::kOk);
  EXPECT_EQ(kv.kv().size(), 1u);
}

TEST(ShardKvFencingTest, UnownedKeyIsWrongGroup) {
  ShardKv kv = low_half();
  const auto result =
      apply_op(kv, ShardKvOp::client_op(1, put("zebra", "1")));  // >= "m"
  EXPECT_EQ(result.status, ResultStatus::kWrongGroup);
  EXPECT_EQ(result.epoch, 1u);
  EXPECT_EQ(kv.kv().size(), 0u);
}

TEST(ShardKvFencingTest, FrozenRangeRejectsWritesUntilDrop) {
  ShardKv kv = low_half();
  apply_op(kv, ShardKvOp::client_op(1, put("apple", "1")));

  apply_op(kv, ShardKvOp::freeze(/*migration=*/9, "a", "c"));
  EXPECT_TRUE(kv.is_frozen("apple"));
  EXPECT_FALSE(kv.is_frozen("date"));

  // F3: both reads and writes inside the frozen range reject.
  EXPECT_EQ(apply_op(kv, ShardKvOp::client_op(1, put("apple", "2"))).status,
            ResultStatus::kFrozen);
  EXPECT_EQ(apply_op(kv, ShardKvOp::client_op(1, get("apple"))).status,
            ResultStatus::kFrozen);
  // Keys outside the freeze stay serviceable.
  EXPECT_EQ(apply_op(kv, ShardKvOp::client_op(1, put("date", "4"))).status,
            ResultStatus::kOk);

  // Freeze is idempotent: a duplicate freeze op changes nothing.
  const auto digest = kv.state_digest();
  apply_op(kv, ShardKvOp::freeze(9, "a", "c"));
  EXPECT_EQ(kv.state_digest(), digest);
}

TEST(ShardKvFencingTest, EpochOnlyMovesForward) {
  ShardKv kv = low_half();
  apply_op(kv, ShardKvOp::freeze(1, "a", "c"));
  apply_op(kv, ShardKvOp::drop(1, /*epoch_new=*/4, "a", "c"));
  EXPECT_EQ(kv.config_epoch(), 4u);
  // F4: a late drop carrying an older epoch cannot roll it back.
  apply_op(kv, ShardKvOp::freeze(2, "c", "f"));
  apply_op(kv, ShardKvOp::drop(2, /*epoch_new=*/3, "c", "f"));
  EXPECT_EQ(kv.config_epoch(), 4u);
}

// ---------------------------------------------------------------------------
// Hand-off: source side.

TEST(ShardKvHandoffTest, SnapshotChunksCoverTheFrozenRange) {
  ShardKv kv = low_half();
  for (char c = 'a'; c <= 'e'; ++c)
    apply_op(kv, ShardKvOp::client_op(1, put(std::string(1, c), "v")));
  apply_op(kv, ShardKvOp::freeze(1, "a", "d"));

  const auto info = apply_op(kv, ShardKvOp::range_info("a", "d"));
  net::Decoder dec(as_span(info.value));
  EXPECT_EQ(dec.u64(), 3u);  // a, b, c — d is exclusive
  const crypto::Digest range_digest = dec.digest();
  ASSERT_TRUE(dec.done());
  EXPECT_EQ(range_digest, kv.kv().range_digest("a", "d"));

  // Two chunks of 2: [a, b], [c].
  const auto chunk0 =
      apply_op(kv, ShardKvOp::snapshot_chunk("a", "d", 0, 2)).value;
  const auto chunk1 =
      apply_op(kv, ShardKvOp::snapshot_chunk("a", "d", 2, 2)).value;
  const auto pairs0 = decode_pairs(as_span(chunk0));
  const auto pairs1 = decode_pairs(as_span(chunk1));
  ASSERT_TRUE(pairs0 && pairs1);
  EXPECT_EQ(pairs0->size(), 2u);
  EXPECT_EQ(pairs1->size(), 1u);
  EXPECT_EQ((*pairs0)[0].first, "a");
  EXPECT_EQ((*pairs1)[0].first, "c");
}

TEST(ShardKvHandoffTest, DropErasesRangeUnfreezesAndFences) {
  ShardKv kv = low_half();
  apply_op(kv, ShardKvOp::client_op(1, put("apple", "1")));
  apply_op(kv, ShardKvOp::client_op(1, put("kiwi", "2")));
  apply_op(kv, ShardKvOp::freeze(7, "a", "c"));

  const auto result = apply_op(kv, ShardKvOp::drop(7, 2, "a", "c"));
  EXPECT_EQ(result.value, "dropped");
  EXPECT_EQ(kv.config_epoch(), 2u);
  EXPECT_FALSE(kv.owns("apple"));
  EXPECT_FALSE(kv.is_frozen("apple"));
  EXPECT_TRUE(kv.owns("kiwi"));
  EXPECT_EQ(kv.kv().range_size("a", "c"), 0u);
  EXPECT_EQ(kv.kv().range_size("", ""), 1u);  // kiwi survived

  // A stale client (map epoch 1) now gets STALE_EPOCH, not silence.
  EXPECT_EQ(apply_op(kv, ShardKvOp::client_op(1, put("apple", "x"))).status,
            ResultStatus::kStaleEpoch);
}

// ---------------------------------------------------------------------------
// Hand-off: destination side.

struct Handoff {
  ShardKv source = low_half();
  ShardKv dest{ShardKv::Config{1, {{"m", ""}}}};
  crypto::Digest digest{};
  std::vector<std::string> chunks;  // encoded pair blocks, in order

  /// Freezes [a, c) on the source and snapshots it in chunks of 2.
  void stage(int keys) {
    for (int i = 0; i < keys; ++i)
      apply_op(source, ShardKvOp::client_op(
                        1, put("a" + std::to_string(i), "v")));
    apply_op(source, ShardKvOp::freeze(1, "a", "c"));
    const auto info = apply_op(source, ShardKvOp::range_info("a", "c"));
    net::Decoder dec(as_span(info.value));
    const std::uint64_t count = dec.u64();
    digest = dec.digest();
    for (std::uint64_t offset = 0; offset < count; offset += 2)
      chunks.push_back(
          apply_op(source, ShardKvOp::snapshot_chunk("a", "c", offset, 2))
              .value);
  }

  std::vector<std::uint8_t> chunk_bytes(std::size_t i) const {
    return {chunks[i].begin(), chunks[i].end()};
  }
};

TEST(ShardKvHandoffTest, AdoptVerifiesDigestAndTakesOwnership) {
  Handoff h;
  h.stage(5);
  ASSERT_EQ(h.chunks.size(), 3u);
  for (std::size_t i = 0; i < h.chunks.size(); ++i)
    EXPECT_EQ(apply_op(h.dest, ShardKvOp::install_chunk(
                  1, static_cast<std::uint32_t>(i), h.chunk_bytes(i)))
                  .value,
              "installed");

  const auto adopted = apply_op(
      h.dest, ShardKvOp::adopt(1, /*epoch_new=*/2, "a", "c", h.digest, 3));
  EXPECT_EQ(adopted.value, "adopted");
  EXPECT_TRUE(h.dest.owns("a1"));
  EXPECT_EQ(h.dest.config_epoch(), 2u);
  // The migrated data digests identically on both sides.
  EXPECT_EQ(h.dest.kv().range_digest("a", "c"),
            h.source.kv().range_digest("a", "c"));
}

TEST(ShardKvHandoffTest, DuplicateAndReorderedChunksAreAbsorbed) {
  Handoff h;
  h.stage(5);
  ASSERT_EQ(h.chunks.size(), 3u);
  // Deliver out of order, with duplicates.
  EXPECT_EQ(apply_op(h.dest, ShardKvOp::install_chunk(1, 2, h.chunk_bytes(2)))
                .value,
            "installed");
  EXPECT_EQ(apply_op(h.dest, ShardKvOp::install_chunk(1, 0, h.chunk_bytes(0)))
                .value,
            "installed");
  EXPECT_EQ(apply_op(h.dest, ShardKvOp::install_chunk(1, 0, h.chunk_bytes(0)))
                .value,
            "dup");
  EXPECT_EQ(apply_op(h.dest, ShardKvOp::install_chunk(1, 1, h.chunk_bytes(1)))
                .value,
            "installed");
  EXPECT_EQ(apply_op(h.dest, ShardKvOp::install_chunk(1, 2, h.chunk_bytes(2)))
                .value,
            "dup");

  const auto adopted =
      apply_op(h.dest, ShardKvOp::adopt(1, 2, "a", "c", h.digest, 3));
  EXPECT_EQ(adopted.value, "adopted");
  EXPECT_EQ(h.dest.kv().range_digest("a", "c"),
            h.source.kv().range_digest("a", "c"));
}

TEST(ShardKvHandoffTest, AdoptWithMissingChunksFailsDeterministically) {
  Handoff h;
  h.stage(5);
  apply_op(h.dest, ShardKvOp::install_chunk(1, 0, h.chunk_bytes(0)));
  const auto adopted =
      apply_op(h.dest, ShardKvOp::adopt(1, 2, "a", "c", h.digest, 3));
  EXPECT_EQ(adopted.value, "adopt-missing-chunks");
  EXPECT_FALSE(h.dest.owns("a1"));
  EXPECT_EQ(h.dest.config_epoch(), 1u);  // ownership unchanged, no bump
}

TEST(ShardKvHandoffTest, AdoptWithDigestMismatchFails) {
  Handoff h;
  h.stage(3);
  for (std::size_t i = 0; i < h.chunks.size(); ++i)
    apply_op(h.dest, ShardKvOp::install_chunk(
                  1, static_cast<std::uint32_t>(i), h.chunk_bytes(i)));
  crypto::Digest wrong = h.digest;
  wrong.bytes[0] ^= 0xff;
  const auto adopted = apply_op(
      h.dest,
      ShardKvOp::adopt(1, 2, "a", "c", wrong,
                       static_cast<std::uint32_t>(h.chunks.size())));
  EXPECT_EQ(adopted.value, "adopt-digest-mismatch");
  EXPECT_FALSE(h.dest.owns("a1"));
}

TEST(ShardKvTest, MalformedOpsLeaveStateUntouched) {
  ShardKv kv = low_half();
  const auto digest = kv.state_digest();
  const std::vector<std::uint8_t> junk{0x00, 0x01, 0x02};
  const auto result = TypedResult::parse(kv.apply_encoded(junk));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->value, "<malformed>");
  EXPECT_EQ(kv.state_digest(), digest);
}

TEST(ShardKvTest, ReplicasApplyingSameLogAgreeOnDigest) {
  // The determinism claim behind post-consensus fencing: two replicas
  // applying the same op sequence agree byte-for-byte, rejects included.
  ShardKv a = low_half();
  ShardKv b = low_half();
  const std::vector<std::vector<std::uint8_t>> log = {
      ShardKvOp::client_op(1, put("apple", "1")),
      ShardKvOp::client_op(0, put("apple", "Z")),  // stale: rejected
      ShardKvOp::freeze(4, "a", "c"),
      ShardKvOp::client_op(1, put("apple", "2")),  // frozen: rejected
      ShardKvOp::client_op(1, put("kiwi", "3")),
      ShardKvOp::drop(4, 2, "a", "c"),
  };
  for (const auto& op : log) EXPECT_EQ(a.apply_encoded(op), b.apply_encoded(op));
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

}  // namespace
}  // namespace qsel::shard
