// GroupTransport / GroupMux: group-local id spaces over a shared
// transport, frame routing between co-hosted groups, and the drop
// counters that account for everything crossing a group boundary wrongly.
#include "shard/group_transport.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/group_frame.hpp"
#include "net/wire.hpp"
#include "runtime/sim_transport.hpp"
#include "sim/network.hpp"
#include "smr/client_messages.hpp"
#include "suspect/update_message.hpp"

namespace qsel::shard {
namespace {

GroupSpec spec_a() {  // members 0,1,2 + client 4 -> locals 0..3
  GroupSpec spec;
  spec.id = 1;
  spec.members = {0, 1, 2};
  spec.clients = {4};
  return spec;
}

GroupSpec spec_b() {  // members 0,1,3 + client 5
  GroupSpec spec;
  spec.id = 2;
  spec.members = {0, 1, 3};
  spec.clients = {5};
  return spec;
}

TEST(GroupSpecTest, LocalGlobalMappingRoundTrips) {
  const GroupSpec spec = spec_a();
  EXPECT_EQ(spec.local_count(), 4u);
  EXPECT_EQ(spec.local_of(0), std::optional<ProcessId>{0});
  EXPECT_EQ(spec.local_of(2), std::optional<ProcessId>{2});
  EXPECT_EQ(spec.local_of(4), std::optional<ProcessId>{3});  // client slot
  EXPECT_FALSE(spec.local_of(3).has_value());  // member of B, not A
  EXPECT_FALSE(spec.local_of(9).has_value());
  for (ProcessId local = 0; local < spec.local_count(); ++local)
    EXPECT_EQ(spec.local_of(spec.global_of(local)),
              std::optional<ProcessId>{local});
}

TEST(GroupSpecTest, KeySeedsDifferPerGroup) {
  // Same rank, different group: unrelated signing keys.
  EXPECT_NE(spec_a().key_seed(7), spec_b().key_seed(7));
  EXPECT_NE(spec_a().key_seed(7), 7u);
}

TEST(GroupSpecTest, SpecFromConfigSection) {
  net::GroupConfig config;
  config.id = 3;
  config.members = {1, 2, 5};
  config.clients = {6};
  const GroupSpec spec = spec_from(config);
  EXPECT_EQ(spec.id, 3u);
  EXPECT_EQ(spec.members, config.members);
  EXPECT_EQ(spec.clients, config.clients);
}

// ---------------------------------------------------------------------------

sim::NetworkConfig fixed_latency() {
  sim::NetworkConfig config;
  config.base_latency = 10;
  config.jitter = 0;
  return config;
}

std::shared_ptr<smr::ClientRequest> request(std::uint32_t client,
                                            std::uint64_t seq) {
  auto req = std::make_shared<smr::ClientRequest>();
  req->client = client;
  req->client_seq = seq;
  req->op = {0xab, 0xcd};
  return req;
}

struct Received {
  ProcessId from;
  sim::PayloadPtr payload;
};

/// Six sim processes; nodes 0 and 1 host a mux with both groups.
struct MuxFixture {
  sim::Simulator sim;
  sim::Network net{sim, 6, fixed_latency(), /*seed=*/1};
  std::vector<std::unique_ptr<runtime::SimTransport>> base;
  std::vector<std::unique_ptr<GroupMux>> mux;

  MuxFixture() {
    for (ProcessId id = 0; id < 6; ++id)
      base.push_back(std::make_unique<runtime::SimTransport>(net, id));
    for (ProcessId id = 0; id < 2; ++id) {
      mux.push_back(std::make_unique<GroupMux>(*base[id]));
      mux[id]->add_group(spec_a());
      mux[id]->add_group(spec_b());
    }
  }

  /// Routes the group's deliveries into `out` (which must outlive the mux
  /// handler, i.e. the test body).
  void record(ProcessId node, GroupId group, std::vector<Received>& out) {
    mux[node]->group(group)->set_handler(
        [&out](ProcessId from, const sim::PayloadPtr& payload) {
          out.push_back({from, payload});
        });
  }
};

TEST(GroupMuxTest, SendRoutesToTheRightGroup) {
  MuxFixture fx;
  std::vector<Received> got_a;
  std::vector<Received> got_b;
  fx.record(1, 1, got_a);
  fx.record(1, 2, got_b);

  fx.mux[0]->group(1)->send(1, request(3, 9));  // group A, local rank 1
  fx.sim.run();

  ASSERT_EQ(got_a.size(), 1u);
  EXPECT_TRUE(got_b.empty());
  EXPECT_EQ(got_a[0].from, 0u);  // group-local sender rank
  const auto* req =
      dynamic_cast<const smr::ClientRequest*>(got_a[0].payload.get());
  ASSERT_NE(req, nullptr);
  EXPECT_EQ(req->client, 3u);
  EXPECT_EQ(req->client_seq, 9u);
  EXPECT_EQ(req->op, (std::vector<std::uint8_t>{0xab, 0xcd}));
}

TEST(GroupMuxTest, BroadcastTranslatesLocalTargetsToGlobal) {
  MuxFixture fx;
  std::vector<Received> node1;
  fx.record(1, 1, node1);
  std::vector<Received> node2;
  // Node 2 is a member of group A only; give it a bare mux.
  GroupMux mux2(*fx.base[2]);
  mux2.add_group(spec_a())
      .set_handler([&node2](ProcessId from, const sim::PayloadPtr& payload) {
        node2.push_back({from, payload});
      });

  ProcessSet locals;
  locals.insert(1);
  locals.insert(2);
  fx.mux[0]->group(1)->broadcast(locals, request(3, 1));
  fx.sim.run();

  ASSERT_EQ(node1.size(), 1u);
  ASSERT_EQ(node2.size(), 1u);
  EXPECT_EQ(node1[0].from, 0u);
  EXPECT_EQ(node2[0].from, 0u);
}

TEST(GroupMuxTest, ForeignSenderIsDroppedBeforeDecoding) {
  MuxFixture fx;
  std::vector<Received> got;
  fx.record(0, 1, got);

  // Node 3 is not in group A; hand-craft a group-A frame from it.
  auto frame = std::make_shared<net::GroupFrame>();
  frame->group = 1;
  frame->inner = *net::encode_message(*request(0, 1));
  fx.base[3]->send(0, frame);
  fx.sim.run();

  EXPECT_TRUE(got.empty());
  EXPECT_EQ(fx.mux[0]->group(1)->dropped_foreign(), 1u);
}

TEST(GroupMuxTest, InnerDecodeUsesGroupLocalBounds) {
  MuxFixture fx;
  std::vector<Received> got;
  fx.record(0, 1, got);

  // client id 5 is in range for the global transport (n=6) but out of
  // range for group A's local space (local_count=4) — must not decode.
  auto frame = std::make_shared<net::GroupFrame>();
  frame->group = 1;
  frame->inner = *net::encode_message(*request(5, 1));
  fx.base[1]->send(0, frame);
  fx.sim.run();

  EXPECT_TRUE(got.empty());
  EXPECT_EQ(fx.mux[0]->group(1)->dropped_foreign(), 1u);
}

TEST(GroupMuxTest, SuspicionGossipSurvivesClientWidenedDecodeBounds) {
  // The suspicion-matrix row is sized by the group's member count (3),
  // but the mux decodes with members+clients (4). An exact-width check
  // at decode time silently dropped every UPDATE between sharded
  // replicas, wedging quorum convergence after a crash; the exact width
  // is the consumer's UpdateMessage::verify check, not framing's.
  MuxFixture fx;
  std::vector<Received> got;
  fx.record(1, 1, got);

  auto update = std::make_shared<suspect::UpdateMessage>();
  update->origin = 0;
  update->row = {0, 2, 1};  // one epoch stamp per group member
  fx.mux[0]->group(1)->send(1, update);
  fx.sim.run();

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(fx.mux[1]->group(1)->dropped_foreign(), 0u);
  const auto* decoded =
      dynamic_cast<const suspect::UpdateMessage*>(got[0].payload.get());
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->origin, 0u);
  EXPECT_EQ(decoded->row, (std::vector<Epoch>{0, 2, 1}));
}

TEST(GroupMuxTest, UnroutableFramesAreCounted) {
  MuxFixture fx;

  auto frame = std::make_shared<net::GroupFrame>();
  frame->group = 99;  // no such group here
  frame->inner = *net::encode_message(*request(0, 1));
  fx.base[1]->send(0, frame);
  fx.base[1]->send(0, request(0, 2));  // bare payload, not a GroupFrame
  fx.sim.run();

  EXPECT_EQ(fx.mux[0]->dropped_unroutable(), 2u);
}

TEST(GroupMuxTest, UnencodablePayloadsNeverLeaveTheGroup) {
  struct Opaque final : sim::Payload {
    std::string_view type_tag() const override { return "test.opaque"; }
    std::size_t wire_size() const override { return 1; }
  };
  MuxFixture fx;
  std::vector<Received> got;
  fx.record(1, 1, got);

  fx.mux[0]->group(1)->send(1, std::make_shared<Opaque>());
  fx.sim.run();

  EXPECT_TRUE(got.empty());
  EXPECT_EQ(fx.mux[0]->group(1)->dropped_unencodable(), 1u);
}

}  // namespace
}  // namespace qsel::shard
