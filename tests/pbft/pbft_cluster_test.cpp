#include "pbft/cluster.hpp"

#include <gtest/gtest.h>

namespace qsel::pbft {
namespace {

constexpr SimDuration kMs = 1'000'000;

ClusterConfig base_config(ProcessId n, int f, std::uint64_t seed = 1) {
  ClusterConfig config;
  config.n = n;
  config.f = f;
  config.seed = seed;
  config.network.base_latency = 1 * kMs;
  config.network.jitter = 200'000;
  config.request_timeout = 40 * kMs;
  config.client_retry = 60 * kMs;
  return config;
}

TEST(PbftClusterTest, NormalCaseCommits) {
  Cluster cluster(base_config(4, 1));
  cluster.start_clients(20);
  cluster.simulator().run_until(3000 * kMs);
  EXPECT_EQ(cluster.total_completed(), 20u);
  EXPECT_EQ(cluster.total_view_changes(), 0u);
  for (ProcessId id = 0; id < 4; ++id)
    EXPECT_EQ(cluster.replica(id).requests_executed(), 20u);
}

// PBFT's defining property for E5: up to f backup crashes are absorbed
// with no reconfiguration at all — at the price of all-to-all broadcast.
TEST(PbftClusterTest, BackupCrashNeedsNoViewChange) {
  Cluster cluster(base_config(4, 1));
  cluster.start_clients(60);
  cluster.simulator().run_until(40 * kMs);
  cluster.network().crash(2);
  cluster.simulator().run_until(5000 * kMs);
  EXPECT_EQ(cluster.total_completed(), 60u);
  EXPECT_EQ(cluster.total_view_changes(), 0u);
}

TEST(PbftClusterTest, PrimaryCrashTriggersViewChange) {
  Cluster cluster(base_config(4, 1, 3));
  cluster.start_clients(60);
  cluster.simulator().run_until(40 * kMs);
  cluster.network().crash(0);  // primary of view 1
  cluster.simulator().run_until(8000 * kMs);
  EXPECT_EQ(cluster.total_completed(), 60u);
  EXPECT_GE(cluster.total_view_changes(), 1u);
  for (ProcessId id : cluster.alive_replicas())
    EXPECT_NE(cluster.replica(id).primary(), 0u);
}

TEST(PbftClusterTest, AllToAllMessageComplexity) {
  Cluster cluster(base_config(7, 2));
  cluster.start_clients(10);
  cluster.simulator().run_until(3000 * kMs);
  ASSERT_EQ(cluster.total_completed(), 10u);
  const auto& stats = cluster.network().stats();
  // Per request: 6 pre-prepares + 6*6 prepares + 7*6 commits.
  EXPECT_EQ(stats.by_type("pbft.preprepare"), 10u * 6);
  EXPECT_EQ(stats.by_type("pbft.prepare"), 10u * 36);
  EXPECT_EQ(stats.by_type("pbft.commit"), 10u * 42);
}

TEST(PbftClusterTest, StateConsistentAcrossReplicas) {
  Cluster cluster(base_config(4, 1, 7));
  cluster.start_clients(30);
  cluster.simulator().run_until(5000 * kMs);
  ASSERT_EQ(cluster.total_completed(), 30u);
  const auto digest = cluster.replica(0).store().state_digest();
  for (ProcessId id = 1; id < 4; ++id)
    EXPECT_EQ(cluster.replica(id).store().state_digest(), digest);
}

}  // namespace
}  // namespace qsel::pbft
