// Theorem 9 validated end to end: the constructive adversary's suspicion
// walk is injected into a real FollowerCluster as signed UPDATE messages
// from the faulty processes, and the number of quorums the correct
// processes issue is counted against the 3f+1 bound — the bound holds in
// the full system, not just in the abstract game.
#include <gtest/gtest.h>

#include "adversary/follower_game.hpp"
#include "runtime/follower_cluster.hpp"
#include "suspect/update_message.hpp"

namespace qsel::runtime {
namespace {

constexpr SimDuration kMs = 1'000'000;

class Theorem9Sweep : public ::testing::TestWithParam<int> {};

TEST_P(Theorem9Sweep, SimulatedWalkStaysWithinBound) {
  const int f = GetParam();
  const auto n = static_cast<ProcessId>(3 * f + 1);
  FollowerClusterConfig config;
  config.n = n;
  config.f = f;
  config.seed = 101 + static_cast<std::uint64_t>(f);
  config.network.base_latency = 1 * kMs;
  config.network.jitter = 100'000;
  config.heartbeat_period = 0;  // adversary drives all suspicions
  // Faulty set {0..f-1} is Byzantine: no honest processes there.
  const ProcessSet faulty = ProcessSet::range(0, static_cast<ProcessId>(f));
  FollowerCluster cluster(config, faulty);

  // The constructive walk from the adversary game, injected as signed
  // rows: each step stamps one suspicion in the faulty author's row.
  adversary::FollowerGame game(adversary::FollowerGameConfig{n, f, 0});
  const auto walk = game.constructive_changes();
  ASSERT_EQ(walk.leader_changes, static_cast<std::uint64_t>(3 * f));

  std::vector<std::vector<Epoch>> rows(
      static_cast<std::size_t>(f), std::vector<Epoch>(n, 0));  // per-faulty accumulated row
  SimTime t = 10 * kMs;
  for (auto [author, victim] : walk.suspicions) {
    ASSERT_LT(author, static_cast<ProcessId>(f)) << "walk author not faulty";
    rows[author][victim] = 1;  // epoch-1 suspicion
    const crypto::Signer signer(cluster.keys(), author);
    const auto update = suspect::UpdateMessage::make(signer, rows[author]);
    for (ProcessId to : cluster.correct())
      cluster.network().send(author, to, update);
    t += 20 * kMs;  // let each step settle (paper: adversary waits for
                    // the quorum to be output before the next suspicion)
    cluster.simulator().run_until(t);
  }
  cluster.simulator().run_until(t + 500 * kMs);

  // Correct processes agree on the final configuration...
  const auto agreed = cluster.agreed_leader_quorum();
  ASSERT_TRUE(agreed.has_value());
  EXPECT_EQ(agreed->first, static_cast<ProcessId>(3 * f))
      << "walk should end at leader 3f";
  // ...and no correct process issued more than 3f+1 quorums in any epoch
  // (Theorem 9), nor more than 6f+2 overall (Corollary 10).
  for (ProcessId id : cluster.alive()) {
    const auto& history = cluster.process(id).selector().history();
    std::map<Epoch, int> per_epoch;
    for (const auto& record : history) ++per_epoch[record.epoch];
    for (const auto& [epoch, count] : per_epoch) {
      EXPECT_LE(count, 3 * f + 1)
          << "process " << id << " issued " << count << " quorums in epoch "
          << epoch;
    }
    EXPECT_LE(history.size(), static_cast<std::size_t>(6 * f + 2))
        << "Corollary 10 violated at process " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(F, Theorem9Sweep, ::testing::Values(1, 2, 3),
                         [](const auto& sweep_info) {
                           return "f" + std::to_string(sweep_info.param);
                         });

}  // namespace
}  // namespace qsel::runtime
