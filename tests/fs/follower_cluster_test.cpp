#include "runtime/follower_cluster.hpp"

#include <gtest/gtest.h>

namespace qsel::runtime {
namespace {

constexpr SimDuration kMs = 1'000'000;

FollowerClusterConfig small_config(ProcessId n, int f,
                                   std::uint64_t seed = 1) {
  FollowerClusterConfig config;
  config.n = n;
  config.f = f;
  config.seed = seed;
  config.network.base_latency = 1'000'000;
  config.network.jitter = 200'000;
  config.heartbeat_period = 5'000'000;
  config.fd.initial_timeout = 12'000'000;
  return config;
}

TEST(FollowerClusterTest, FaultFreeRunKeepsDefaultLeader) {
  FollowerCluster cluster(small_config(4, 1));
  cluster.start();
  cluster.simulator().run_until(500 * kMs);
  const auto agreed = cluster.agreed_leader_quorum();
  ASSERT_TRUE(agreed.has_value());
  EXPECT_EQ(agreed->first, 0u);
  EXPECT_EQ(agreed->second, (ProcessSet{0, 1, 2}));
  EXPECT_EQ(cluster.total_quorums_issued(), 0u);
}

TEST(FollowerClusterTest, CrashedLeaderIsReplaced) {
  FollowerCluster cluster(small_config(4, 1));
  cluster.start();
  cluster.simulator().run_until(50 * kMs);
  cluster.network().crash(0);
  cluster.simulator().run_until(800 * kMs);
  const auto agreed = cluster.agreed_leader_quorum();
  ASSERT_TRUE(agreed.has_value());
  EXPECT_NE(agreed->first, 0u);
  EXPECT_EQ(agreed->second.size(), 3);
  // No-leader-suspicion: nobody in the quorum suspects the leader.
  for (ProcessId id : cluster.correct()) {
    if (!agreed->second.contains(id)) continue;
    EXPECT_FALSE(cluster.process(id).failure_detector().suspected().contains(
        agreed->first));
  }
}

TEST(FollowerClusterTest, LeaderOmittingToOneFollowerIsReplaced) {
  FollowerCluster cluster(small_config(7, 2, 3));
  cluster.start();
  cluster.simulator().run_until(50 * kMs);
  // The leader (0) omits heartbeats to follower 1 only.
  cluster.network().set_link_enabled(0, 1, false);
  cluster.simulator().run_until(800 * kMs);
  const auto agreed = cluster.agreed_leader_quorum();
  ASSERT_TRUE(agreed.has_value());
  EXPECT_NE(agreed->first, 0u) << "omitting leader must lose leadership";
}

TEST(FollowerClusterTest, StabilizesAfterLeaderCrash) {
  FollowerCluster cluster(small_config(7, 2, 5));
  cluster.start();
  cluster.simulator().run_until(50 * kMs);
  cluster.network().crash(0);
  cluster.simulator().run_until(1000 * kMs);
  const auto agreed = cluster.agreed_leader_quorum();
  ASSERT_TRUE(agreed.has_value());
  const std::uint64_t issued = cluster.total_quorums_issued();
  cluster.simulator().run_until(3000 * kMs);
  EXPECT_EQ(cluster.total_quorums_issued(), issued) << "still churning";
  EXPECT_EQ(cluster.agreed_leader_quorum(), agreed);
}

TEST(FollowerClusterTest, FollowerCrashLeaderReselects) {
  FollowerCluster cluster(small_config(7, 2, 11));
  cluster.start();
  cluster.simulator().run_until(50 * kMs);
  cluster.network().crash(3);  // a follower in the default quorum {0..4}
  cluster.simulator().run_until(1000 * kMs);
  const auto agreed = cluster.agreed_leader_quorum();
  ASSERT_TRUE(agreed.has_value());
  EXPECT_FALSE(agreed->second.contains(3))
      << "leader " << agreed->first << " quorum "
      << agreed->second.to_string();
  EXPECT_EQ(agreed->second.size(), 5);
}

TEST(FollowerClusterTest, DeterministicRuns) {
  auto run = [](std::uint64_t seed) {
    FollowerCluster cluster(small_config(7, 2, seed));
    cluster.start();
    cluster.simulator().run_until(30 * kMs);
    cluster.network().crash(0);
    cluster.simulator().run_until(600 * kMs);
    return std::make_tuple(cluster.agreed_leader_quorum(),
                           cluster.total_quorums_issued(),
                           cluster.network().stats().total_messages());
  };
  EXPECT_EQ(run(9), run(9));
}

}  // namespace
}  // namespace qsel::runtime
