#include "fs/follower_selector.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <set>
#include <vector>

#include "graph/line_subgraph.hpp"

namespace qsel::fs {
namespace {

/// Synchronous network of FollowerSelectors. FIFO per sender is preserved
/// because broadcasts are queued and delivered in order.
struct FsNet {
  ProcessId n;
  int f;
  crypto::KeyRegistry keys;
  std::vector<crypto::Signer> signers;
  std::vector<std::unique_ptr<FollowerSelector>> selectors;
  std::deque<std::pair<ProcessId, sim::PayloadPtr>> wire;
  std::vector<std::vector<LeaderQuorumRecord>> issued;
  std::vector<std::vector<std::pair<ProcessId, Epoch>>> expects;
  std::vector<int> cancels;
  std::vector<std::vector<ProcessId>> detections;

  FsNet(ProcessId n_in, int f_in) : n(n_in), f(f_in), keys(n_in, 1) {
    issued.resize(n);
    expects.resize(n);
    cancels.resize(n, 0);
    detections.resize(n);
    for (ProcessId i = 0; i < n; ++i) signers.emplace_back(keys, i);
    for (ProcessId i = 0; i < n; ++i) {
      selectors.push_back(std::make_unique<FollowerSelector>(
          signers[i], FollowerSelectorConfig{n, f},
          FollowerSelector::Hooks{
              [this, i](ProcessId l, ProcessSet q) {
                issued[i].push_back(LeaderQuorumRecord{l, q, 0});
              },
              [this, i](sim::PayloadPtr m) { wire.emplace_back(i, m); },
              [this, i](ProcessId l, Epoch e) {
                expects[i].emplace_back(l, e);
              },
              [this, i] { ++cancels[i]; },
              [this, i](ProcessId c) { detections[i].push_back(c); }}));
    }
  }

  void drain(std::size_t max_messages = 1u << 20) {
    std::size_t delivered = 0;
    while (!wire.empty() && delivered < max_messages) {
      auto [sender, payload] = wire.front();
      wire.pop_front();
      for (ProcessId i = 0; i < n; ++i) {
        if (i == sender) continue;
        if (auto u = std::dynamic_pointer_cast<const suspect::UpdateMessage>(
                payload)) {
          selectors[i]->on_update(u);
        } else if (auto fw =
                       std::dynamic_pointer_cast<const FollowersMessage>(
                           payload)) {
          selectors[i]->on_followers(fw);
        } else {
          FAIL() << "unexpected payload";
        }
      }
      ++delivered;
    }
  }

  bool all_agree(ProcessId leader, ProcessSet quorum) const {
    for (const auto& s : selectors)
      if (s->leader() != leader || s->quorum() != quorum) return false;
    return true;
  }
};

TEST(FollowerSelectorTest, InitialStateIsDefault) {
  FsNet net(4, 1);
  EXPECT_EQ(net.selectors[0]->leader(), 0u);
  EXPECT_EQ(net.selectors[0]->quorum(), (ProcessSet{0, 1, 2}));
  EXPECT_TRUE(net.selectors[0]->stable());
}

TEST(FollowerSelectorTest, RequiresNGreaterThan3f) {
  const crypto::KeyRegistry keys(6, 1);
  const crypto::Signer signer(keys, 0);
  const FollowerSelector::Hooks hooks{
      [](ProcessId, ProcessSet) {}, [](sim::PayloadPtr) {},
      [](ProcessId, Epoch) {},      [] {},
      [](ProcessId) {}};
  EXPECT_THROW(FollowerSelector(signer, FollowerSelectorConfig{6, 2}, hooks),
               std::invalid_argument);
  EXPECT_NO_THROW(
      FollowerSelector(signer, FollowerSelectorConfig{7, 2}, hooks));
}

// A suspicion against the leader moves the leadership and the new leader
// broadcasts FOLLOWERS, which everybody adopts.
TEST(FollowerSelectorTest, LeaderSuspicionElectsNewLeader) {
  FsNet net(4, 1);
  // Process 1 suspects leader 0: edge (0,1); maximal line subgraph covers
  // {0,1} via that edge, designating leader 2.
  net.selectors[1]->on_suspected(ProcessSet{0});
  net.drain();
  EXPECT_TRUE(net.all_agree(2, (ProcessSet{0, 1, 2})))
      << "leader " << net.selectors[3]->leader() << " quorum "
      << net.selectors[3]->quorum().to_string();
  // Followers of the 2-path (0,1): both endpoints are possible followers.
  // Leader 2 picks the q-1 = 2 smallest: {0, 1}.
  for (ProcessId i = 0; i < 4; ++i) {
    EXPECT_TRUE(net.selectors[i]->stable());
    ASSERT_GE(net.issued[i].size(), 1u);
    EXPECT_EQ(net.issued[i].back().leader, 2u);
  }
  // Non-leaders expected a FOLLOWERS message from the new leader.
  EXPECT_FALSE(net.expects[1].empty());
  EXPECT_EQ(net.expects[1].back().first, 2u);
  // Everyone cancelled old expectations on the leader change.
  for (ProcessId i = 0; i < 4; ++i) EXPECT_GE(net.cancels[i], 1);
}

TEST(FollowerSelectorTest, FollowerFollowerSuspicionToleratedWhenHarmless) {
  FsNet net(7, 2);
  // Suspicion between two followers (1,2). Maximal line subgraph covers
  // {0? no—} ... edge (1,2) cannot cover node 0, so the leader stays 0 and
  // no quorum change happens at all.
  net.selectors[1]->on_suspected(ProcessSet{2});
  net.drain();
  EXPECT_TRUE(net.all_agree(0, ProcessSet::full(5)));
  for (ProcessId i = 0; i < 7; ++i) EXPECT_TRUE(net.issued[i].empty());
}

TEST(FollowerSelectorTest, SuccessiveLeaderSuspicionsWalkUpward) {
  FsNet net(7, 2);
  // Suspect leader 0 -> line (0,x) designates leader 1 (if x > 1)...
  // Concretely: 1 suspects 0: edge (0,1) -> cover {0} via (0,1); leader
  // becomes... cover {0,1}? The edge covers both: leader 2.
  net.selectors[1]->on_suspected(ProcessSet{0});
  net.drain();
  EXPECT_EQ(net.selectors[3]->leader(), 2u);
  // Next, 3 suspects the new leader 2: edges (0,1), (2,3): leader 4.
  net.selectors[3]->on_suspected(ProcessSet{2});
  net.drain();
  EXPECT_EQ(net.selectors[5]->leader(), 4u);
  EXPECT_TRUE(net.selectors[5]->quorum().contains(4));
  // All correct processes agree.
  const ProcessSet q = net.selectors[0]->quorum();
  EXPECT_TRUE(net.all_agree(4, q));
}

TEST(FollowerSelectorTest, MalformedFollowersDetected) {
  FsNet net(4, 1);
  net.selectors[1]->on_suspected(ProcessSet{0});
  net.drain();
  ASSERT_TRUE(net.all_agree(2, (ProcessSet{0, 1, 2})));
  // Leader 2 now equivocates: a second FOLLOWERS message with a different
  // follower set in the same epoch.
  const Epoch e = net.selectors[2]->epoch();
  const auto line = graph::SimpleGraph::from_edges(4, {{0, 1}});
  const auto equivocation =
      FollowersMessage::make(net.signers[2], ProcessSet{1, 3}, line, e);
  net.selectors[0]->on_followers(equivocation);
  ASSERT_EQ(net.detections[0].size(), 1u);
  EXPECT_EQ(net.detections[0][0], 2u);
}

TEST(FollowerSelectorTest, IllFormedLineSubgraphDetected) {
  FsNet net(7, 2);
  net.selectors[1]->on_suspected(ProcessSet{0});
  net.drain();
  const ProcessId leader = net.selectors[3]->leader();
  ASSERT_EQ(leader, 2u);
  const Epoch e = net.selectors[3]->epoch();
  // Leader claims a line subgraph containing an edge nobody suspects:
  // Definition 3 b) fails at every receiver.
  const auto bogus_line = graph::SimpleGraph::from_edges(7, {{0, 1}, {4, 5}});
  const auto msg = FollowersMessage::make(net.signers[2],
                                          ProcessSet{0, 1, 3, 4}, bogus_line, e);
  net.selectors[3]->on_followers(msg);
  ASSERT_EQ(net.detections[3].size(), 1u);
  EXPECT_EQ(net.detections[3][0], 2u);
}

TEST(FollowerSelectorTest, WrongEpochOrWrongLeaderIgnored) {
  FsNet net(4, 1);
  net.selectors[1]->on_suspected(ProcessSet{0});
  net.drain();
  const auto line = graph::SimpleGraph::from_edges(4, {{0, 1}});
  // Stale epoch:
  const auto stale =
      FollowersMessage::make(net.signers[2], ProcessSet{0, 1}, line, 99);
  net.selectors[0]->on_followers(stale);
  // Not the current leader:
  const auto imposter =
      FollowersMessage::make(net.signers[3], ProcessSet{0, 1}, line, 1);
  net.selectors[0]->on_followers(imposter);
  EXPECT_TRUE(net.detections[0].empty());
}

TEST(FollowerSelectorTest, ForgedSignatureDropped) {
  FsNet net(4, 1);
  net.selectors[1]->on_suspected(ProcessSet{0});
  net.drain();
  const auto line = graph::SimpleGraph::from_edges(4, {{0, 1}});
  auto forged = std::make_shared<FollowersMessage>(
      *FollowersMessage::make(net.signers[3], ProcessSet{1, 3}, line, 1));
  forged->leader = 2;  // claims to be the real leader
  net.selectors[0]->on_followers(
      std::shared_ptr<const FollowersMessage>(forged));
  EXPECT_TRUE(net.detections[0].empty());
  EXPECT_EQ(net.selectors[0]->quorum(), (ProcessSet{0, 1, 2}));
}

// Epoch bump: mutually-inconsistent suspicions leave no independent set;
// Algorithm 2 installs the default leader and quorum for the new epoch.
TEST(FollowerSelectorTest, EpochBumpRestoresDefaultQuorum) {
  FsNet net(4, 1);
  // With n=4, q=3: edges (0,1) and (2,3) kill every size-3 independent
  // set.
  net.selectors[0]->on_suspected(ProcessSet{1});
  net.selectors[2]->on_suspected(ProcessSet{3});
  net.drain(200);
  for (ProcessId i = 0; i < 4; ++i) {
    EXPECT_GE(net.selectors[i]->epoch(), 2u);
    bool saw_default = false;
    for (const auto& rec : net.issued[i])
      if (rec.leader == 0 && rec.quorum == ProcessSet{0, 1, 2})
        saw_default = true;
    EXPECT_TRUE(saw_default) << "process " << i;
  }
}

// Theorem 9 precondition: one quorum per (leader, epoch) pair.
TEST(FollowerSelectorTest, OneQuorumPerLeaderAndEpoch) {
  FsNet net(7, 2);
  net.selectors[1]->on_suspected(ProcessSet{0});
  net.drain();
  net.selectors[3]->on_suspected(ProcessSet{2});
  net.drain();
  net.selectors[5]->on_suspected(ProcessSet{4});
  net.drain();
  for (ProcessId i = 0; i < 7; ++i) {
    const auto& recs = net.selectors[i]->history();
    std::set<std::pair<ProcessId, Epoch>> seen;
    for (const auto& rec : recs)
      EXPECT_TRUE(seen.emplace(rec.leader, rec.epoch).second)
          << "process " << i << " issued two quorums for leader "
          << rec.leader << " epoch " << rec.epoch;
  }
}

}  // namespace
}  // namespace qsel::fs
