// Byzantine behaviour against Follower Selection, end to end in the
// simulator: a faulty process that equivocates FOLLOWERS messages is
// DETECTED (permanent commission failure, Lines 29-32 of Algorithm 2) and
// the remaining processes converge around it.
#include <gtest/gtest.h>

#include "runtime/follower_cluster.hpp"

namespace qsel::runtime {
namespace {

constexpr SimDuration kMs = 1'000'000;

FollowerClusterConfig base_config(ProcessId n, int f, std::uint64_t seed) {
  FollowerClusterConfig config;
  config.n = n;
  config.f = f;
  config.seed = seed;
  config.network.base_latency = 1 * kMs;
  config.network.jitter = 200'000;
  config.heartbeat_period = 5 * kMs;
  config.fd.initial_timeout = 12 * kMs;
  return config;
}

// The Byzantine actor stays silent except for poison: when the honest
// processes come to expect FOLLOWERS from it (it would become leader after
// p0 crashes... we make IT the initial leader instead by having it send
// equivocating FOLLOWERS messages for epoch 1 right away).
struct EquivocatingProcess final : sim::Actor {
  sim::Network& net;
  crypto::Signer signer;
  ProcessId n;
  bool fired = false;

  EquivocatingProcess(sim::Network& network, const crypto::KeyRegistry& keys,
                      ProcessId self, ProcessId n_in)
      : net(network), signer(keys, self), n(n_in) {}

  void on_message(ProcessId, const sim::PayloadPtr& message) override {
    // Wait until it is asked for anything (i.e. it is leader and others
    // expect FOLLOWERS — visible as incoming heartbeats), then equivocate.
    if (fired) return;
    if (std::dynamic_pointer_cast<const HeartbeatMessage>(message) == nullptr)
      return;
    fired = true;
    // Conflicting FOLLOWERS messages for epoch 1 with an empty line
    // subgraph: leader must be the minimum uncovered node — itself only if
    // it is p0... we send structurally *invalid* messages and let
    // Definition 3 catch them.
    const graph::SimpleGraph empty(n);
    const auto bogus_a = fs::FollowersMessage::make(
        signer, ProcessSet{1, 2, 3, 4}, empty, 1);
    const auto bogus_b = fs::FollowersMessage::make(
        signer, ProcessSet{2, 3, 4, 5}, empty, 1);
    for (ProcessId to = 1; to < n; to += 2) net.send(0, to, bogus_a);
    for (ProcessId to = 2; to < n; to += 2) net.send(0, to, bogus_b);
  }
};

TEST(FollowerByzantineTest, EquivocatingLeaderDetectedAndReplaced) {
  // p0 is Byzantine AND the initial leader: honest processes expect its
  // heartbeats; instead they get equivocating FOLLOWERS messages whose
  // line subgraph does not designate p0 (Definition 3 c) — a provable
  // commission failure.
  FollowerClusterConfig config = base_config(7, 2, 17);
  FollowerCluster cluster(config, ProcessSet{0});
  EquivocatingProcess byzantine(cluster.network(), cluster.keys(), 0, 7);
  cluster.network().attach(0, byzantine);
  cluster.start();
  cluster.simulator().run_until(2000 * kMs);

  // Everyone detected p0 (it signed FOLLOWERS claiming leadership with a
  // line subgraph that does not designate it) or at least suspects its
  // silence; either way the agreed leader is someone else.
  const auto agreed = cluster.agreed_leader_quorum();
  ASSERT_TRUE(agreed.has_value());
  EXPECT_NE(agreed->first, 0u);
  int detections = 0;
  for (ProcessId id : cluster.alive()) {
    if (cluster.process(id).failure_detector().detected_set().contains(0))
      ++detections;
  }
  EXPECT_GT(detections, 0) << "nobody holds a proof of misbehaviour";
}

TEST(FollowerByzantineTest, SilentLeaderSuspectedNotDetected) {
  // A merely *silent* faulty leader is an omission failure: suspected and
  // replaced, but never DETECTED (no commission proof exists) — the
  // paper's distinction between eventual and permanent detection
  // (Section II).
  FollowerClusterConfig config = base_config(7, 2, 19);
  FollowerCluster cluster(config, ProcessSet{0});  // id 0 never attached
  cluster.start();
  cluster.simulator().run_until(2000 * kMs);
  const auto agreed = cluster.agreed_leader_quorum();
  ASSERT_TRUE(agreed.has_value());
  EXPECT_NE(agreed->first, 0u);
  for (ProcessId id : cluster.alive()) {
    EXPECT_FALSE(
        cluster.process(id).failure_detector().detected_set().contains(0))
        << "omission must not be permanently detected (Section II)";
  }
}

}  // namespace
}  // namespace qsel::runtime
