// End-to-end SMR correctness battery for the pipelined/batched XPaxos
// commit path, driven through the deterministic load generator.
//
//  * Pipelining equivalence: across seeds and fault schedules (drop /
//    dup / reorder / partition), pipeline windows 1 (serial), 4 and 16
//    must commit every request exactly once and reach bit-identical
//    application state and per-client response sequences.
//  * Batching equivalence: many-request PREPAREs vs one-request-per-
//    instance give the same state and responses, while the batched arm
//    provably amortizes (fewer PREPAREs than commits).
//  * View change under load: killing the leader with a full pipeline
//    window loses nothing — every request still commits exactly once.
//  * Determinism: same (config, seed) on the sim substrate produces a
//    bit-identical JSON report.
#include "load/driver.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace qsel::load {
namespace {

// Serial-client equivalence configuration: outstanding = 1 keeps each
// client's operation order fixed, and disjoint key ranges (driver default)
// make the final state independent of cross-client interleaving — so
// every arm must reach the SAME state, not merely a consistent one.
LoadConfig equivalence_config(std::uint64_t seed) {
  LoadConfig config;
  config.seed = seed;
  config.clients = 3;
  config.outstanding = 1;
  config.requests_per_client = 12;
  config.key_space = 16;
  return config;
}

struct Arm {
  std::size_t window;
  std::size_t batch;
};
constexpr Arm kArms[] = {{1, 1}, {4, 4}, {16, 8}};

void expect_equivalent_arms(LoadConfig config, const std::string& label) {
  const std::uint64_t expected =
      std::uint64_t{config.clients} * config.requests_per_client;
  std::vector<LoadReport> reports;
  for (const Arm& arm : kArms) {
    config.pipeline_window = arm.window;
    config.max_batch = arm.batch;
    reports.push_back(run_sim(config));
    const LoadReport& r = reports.back();
    ASSERT_EQ(r.committed, expected)
        << label << " window=" << arm.window << ": lost or stuck requests";
    EXPECT_TRUE(r.history_error.empty())
        << label << " window=" << arm.window << ": " << r.history_error;
  }
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_EQ(reports[0].app_digest.to_hex(), reports[i].app_digest.to_hex())
        << label << ": window " << kArms[i].window
        << " diverged from serial state";
    EXPECT_EQ(reports[0].responses_digest, reports[i].responses_digest)
        << label << ": window " << kArms[i].window
        << " told clients something different";
  }
}

TEST(LoadDriverTest, PipeliningEquivalenceCleanNetwork) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull})
    expect_equivalent_arms(equivalence_config(seed),
                           "clean seed " + std::to_string(seed));
}

TEST(LoadDriverTest, PipeliningEquivalenceUnderDrops) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    LoadConfig config = equivalence_config(seed);
    // A replica-to-replica link blacks out mid-run and comes back; the
    // failure detector's view change must not lose or duplicate anything.
    // Fault-free runs last ~60ms of virtual time, so the blackout starts
    // at 10ms to be sure it lands mid-pipeline.
    config.sim_faults = [](sim::Simulator& sim, sim::Network& network) {
      sim.schedule_after(10'000'000, [&network] {
        network.set_link_enabled(0, 1, false);
        network.set_link_enabled(1, 0, false);
      });
      sim.schedule_after(150'000'000, [&network] {
        network.set_link_enabled(0, 1, true);
        network.set_link_enabled(1, 0, true);
      });
    };
    expect_equivalent_arms(config, "drop seed " + std::to_string(seed));
  }
}

TEST(LoadDriverTest, PipeliningEquivalenceUnderDuplication) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    LoadConfig config = equivalence_config(seed);
    // Every replica-to-replica link delivers twice for the whole run:
    // duplicated PREPAREs/COMMITs/requests must all be idempotent.
    config.sim_faults = [&config](sim::Simulator&, sim::Network& network) {
      for (ProcessId a = 0; a < config.n; ++a)
        for (ProcessId b = 0; b < config.n; ++b)
          if (a != b) network.set_link_duplicate(a, b, true);
    };
    expect_equivalent_arms(config, "dup seed " + std::to_string(seed));
  }
}

TEST(LoadDriverTest, PipeliningEquivalenceUnderReordering) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    LoadConfig config = equivalence_config(seed);
    // Jitter several times the base latency: messages overtake each other
    // freely (links are not FIFO), including COMMIT-before-PREPARE.
    config.network.jitter = 4'000'000;
    expect_equivalent_arms(config, "reorder seed " + std::to_string(seed));
  }
}

TEST(LoadDriverTest, PipeliningEquivalenceUnderPartition) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    LoadConfig config = equivalence_config(seed);
    // A 2-2 split leaves no quorum at all for 250ms; progress must stall
    // cleanly and resume exactly-once after the heal.
    config.sim_faults = [](sim::Simulator& sim, sim::Network& network) {
      sim.schedule_after(15'000'000, [&network] {
        network.partition(ProcessSet{0, 1}, ProcessSet{2, 3});
      });
      sim.schedule_after(150'000'000,
                         [&network] { network.heal_partition(); });
    };
    expect_equivalent_arms(config, "partition seed " + std::to_string(seed));
  }
}

TEST(LoadDriverTest, BatchingEquivalenceAndAmortization) {
  // Six serial clients behind a window of 2 force a queue, so the batched
  // arm genuinely packs multiple requests per PREPARE; the unbatched arm
  // proposes one per instance. State and responses must match anyway.
  LoadConfig config;
  config.seed = 11;
  config.clients = 6;
  config.outstanding = 1;
  config.requests_per_client = 20;
  config.key_space = 16;
  config.pipeline_window = 2;

  config.max_batch = 8;
  const LoadReport batched = run_sim(config);
  config.max_batch = 1;
  const LoadReport unbatched = run_sim(config);

  const std::uint64_t expected = 6 * 20;
  ASSERT_EQ(batched.committed, expected);
  ASSERT_EQ(unbatched.committed, expected);
  EXPECT_TRUE(batched.history_error.empty()) << batched.history_error;
  EXPECT_TRUE(unbatched.history_error.empty()) << unbatched.history_error;
  EXPECT_EQ(batched.app_digest.to_hex(), unbatched.app_digest.to_hex());
  EXPECT_EQ(batched.responses_digest, unbatched.responses_digest);
  // Amortization, in consensus instances. `prepares` counts wire
  // messages and each instance fans a PREPARE out to the other
  // kFanout = 2f quorum members (n=4, f=1: quorum of 3, leader + 2), so
  // instances = prepares / kFanout. The batched arm needed strictly
  // fewer instances than requests; the unbatched arm needed one each.
  const std::uint64_t kFanout = 2;
  EXPECT_LT(batched.prepares, kFanout * batched.committed);
  EXPECT_GE(unbatched.prepares, kFanout * unbatched.committed);
  EXPECT_LT(batched.prepares, unbatched.prepares);
}

TEST(LoadDriverTest, ViewChangeUnderLoadLosesNothing) {
  // Kill the initial leader while the pipeline window is full (4 clients
  // x 4 outstanding against window 16). Acked operations must survive
  // into the new view and every request must still commit exactly once.
  LoadConfig config;
  config.seed = 21;
  config.clients = 4;
  config.outstanding = 4;
  config.requests_per_client = 25;
  // The fault-free run lasts ~40ms of virtual time, so crash at 10ms —
  // well before the last commit — to guarantee the window is full.
  config.sim_faults = [](sim::Simulator& sim, sim::Network& network) {
    sim.schedule_after(10'000'000, [&network] { network.crash(0); });
  };
  const LoadReport report = run_sim(config);
  EXPECT_EQ(report.committed, 4u * 25u);
  EXPECT_TRUE(report.history_error.empty()) << report.history_error;
  EXPECT_GT(report.view_changes, 0u) << "crash never forced a view change";
}

TEST(LoadDriverTest, SimReportIsBitIdenticalAcrossRuns) {
  LoadConfig config;
  config.seed = 33;
  config.clients = 4;
  config.outstanding = 4;
  config.requests_per_client = 15;
  config.zipf_theta = 0.99;
  const LoadReport a = run_sim(config);
  const LoadReport b = run_sim(config);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.latency.digest(), b.latency.digest());
  EXPECT_GT(a.committed, 0u);
}

TEST(LoadDriverTest, OpenLoopShedsBeyondOutstandingCap) {
  LoadConfig config;
  config.seed = 5;
  config.clients = 2;
  config.open_rate_per_sec = 20'000;  // far beyond what commits allow
  config.max_outstanding = 2;
  config.duration_ms = 300;
  const LoadReport report = run_sim(config);
  EXPECT_GT(report.committed, 0u);
  EXPECT_GT(report.shed, 0u) << "open loop never hit the in-flight cap";
  EXPECT_EQ(report.duration_ns, 300'000'000u);
}

TEST(LoadDriverTest, PipelineBeatsSerialThroughputInSim) {
  // The BENCH_6 headline ratio, asserted at test scale: with 8 eager
  // clients, the pipelined+batched path commits at least twice as many
  // requests as the serial path in the same virtual duration.
  LoadConfig config;
  config.seed = 3;
  config.clients = 8;
  config.outstanding = 8;
  config.duration_ms = 400;

  config.pipeline_window = 1;
  config.max_batch = 1;
  const LoadReport serial = run_sim(config);
  config.pipeline_window = 16;
  config.max_batch = 8;
  const LoadReport pipelined = run_sim(config);

  ASSERT_GT(serial.committed, 0u);
  EXPECT_GE(pipelined.committed, 2 * serial.committed)
      << "pipelined " << pipelined.committed << " vs serial "
      << serial.committed;
}

}  // namespace
}  // namespace qsel::load
