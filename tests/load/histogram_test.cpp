// LatencyHistogram unit battery: exact bucket boundaries, merge
// associativity, the quantile error bound against a sorted-vector oracle,
// and digest determinism (order independence).
#include "load/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace qsel::load {
namespace {

TEST(LatencyHistogramTest, BucketBoundariesAreExact) {
  // Every value lands in a bucket whose [lower, upper] range contains it,
  // and the decomposition round-trips: bucket_lower/upper are the extreme
  // values mapping to that index.
  std::vector<std::uint64_t> probes;
  for (std::uint64_t v = 0; v < 4096; ++v) probes.push_back(v);
  for (int e = 4; e < 64; ++e) {
    const std::uint64_t p = std::uint64_t{1} << e;
    probes.push_back(p - 1);
    probes.push_back(p);
    probes.push_back(p + 1);
  }
  probes.push_back(~std::uint64_t{0});
  for (const std::uint64_t v : probes) {
    const std::size_t index = LatencyHistogram::bucket_index(v);
    ASSERT_LT(index, LatencyHistogram::kBucketCount);
    const std::uint64_t lower = LatencyHistogram::bucket_lower(index);
    const std::uint64_t upper = LatencyHistogram::bucket_upper(index);
    EXPECT_LE(lower, v) << v;
    EXPECT_GE(upper, v) << v;
    EXPECT_EQ(LatencyHistogram::bucket_index(lower), index);
    EXPECT_EQ(LatencyHistogram::bucket_index(upper), index);
    if (index + 1 < LatencyHistogram::kBucketCount) {
      EXPECT_EQ(LatencyHistogram::bucket_lower(index + 1), upper + 1);
    }
  }
  // Values below 32 get unit-width (exact) buckets.
  for (std::uint64_t v = 0; v < 32; ++v) {
    const std::size_t index = LatencyHistogram::bucket_index(v);
    EXPECT_EQ(LatencyHistogram::bucket_lower(index),
              LatencyHistogram::bucket_upper(index));
  }
  // Relative bucket width never exceeds 1/16 of the lower bound.
  for (std::size_t i = LatencyHistogram::kLinearBuckets;
       i < LatencyHistogram::kBucketCount; ++i) {
    const std::uint64_t lower = LatencyHistogram::bucket_lower(i);
    const std::uint64_t width =
        LatencyHistogram::bucket_upper(i) - lower + 1;
    EXPECT_LE(width, lower / 16) << "bucket " << i;
  }
  // The top bucket ends exactly at the 64-bit ceiling.
  EXPECT_EQ(LatencyHistogram::bucket_upper(LatencyHistogram::kBucketCount - 1),
            ~std::uint64_t{0});
}

TEST(LatencyHistogramTest, MergeIsAssociativeAndCommutative) {
  Rng rng(42);
  const auto fill = [&](std::size_t count) {
    LatencyHistogram h;
    for (std::size_t i = 0; i < count; ++i)
      h.record(rng.below(50'000'000));
    return h;
  };
  const LatencyHistogram a = fill(1000);
  const LatencyHistogram b = fill(500);
  const LatencyHistogram c = fill(2000);

  LatencyHistogram ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);
  LatencyHistogram bc = b;
  bc.merge(c);
  LatencyHistogram a_bc = a;
  a_bc.merge(bc);
  LatencyHistogram cba = c;
  cba.merge(b);
  cba.merge(a);

  EXPECT_EQ(ab_c.digest(), a_bc.digest());
  EXPECT_EQ(ab_c.digest(), cba.digest());
  EXPECT_EQ(ab_c.count(), a.count() + b.count() + c.count());
  EXPECT_EQ(ab_c.sum(), a.sum() + b.sum() + c.sum());
  EXPECT_EQ(ab_c.p99(), a_bc.p99());
}

TEST(LatencyHistogramTest, QuantileErrorBoundVsSortedOracle) {
  // 10k seeded samples spanning six orders of magnitude; the histogram
  // quantile must never understate the exact nearest-rank value and must
  // overstate it by at most the bucket width (<= 1/16 relative).
  Rng rng(7);
  LatencyHistogram hist;
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 10'000; ++i) {
    // Log-uniform-ish: pick a decade, then a value inside it.
    const std::uint64_t decade = 1ULL << rng.between(4, 30);
    const std::uint64_t v = decade + rng.below(decade);
    samples.push_back(v);
    hist.record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (const double p : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const auto rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(p * static_cast<double>(samples.size()))));
    const std::uint64_t exact = samples[rank - 1];
    const std::uint64_t approx = hist.quantile(p);
    EXPECT_GE(approx, exact) << "p=" << p;
    EXPECT_LE(approx, exact + exact / 16 + 1) << "p=" << p;
  }
  EXPECT_EQ(hist.min(), samples.front());
  EXPECT_EQ(hist.max(), samples.back());
}

TEST(LatencyHistogramTest, DigestIsOrderIndependentAndSensitive) {
  Rng rng(9);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 512; ++i) values.push_back(rng.below(1'000'000));

  LatencyHistogram forward;
  for (const auto v : values) forward.record(v);
  LatencyHistogram backward;
  for (auto it = values.rbegin(); it != values.rend(); ++it)
    backward.record(*it);
  EXPECT_EQ(forward.digest(), backward.digest());

  LatencyHistogram tweaked = forward;
  tweaked.record(123'456'789);
  EXPECT_NE(forward.digest(), tweaked.digest());
}

TEST(LatencyHistogramTest, EmptyAndExtremes) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.mean(), 0u);

  h.record(0);
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), ~std::uint64_t{0});

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.digest(), LatencyHistogram{}.digest());
}

}  // namespace
}  // namespace qsel::load
