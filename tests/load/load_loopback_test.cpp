// The load driver over real loopback TCP: a short closed-loop run on
// n = 4 must commit work, report sane latencies, and prove the zero-copy
// broadcast path carried frames end-to-end (frames_shared > 0 means the
// leader's PREPAREs went out as shared payload bytes, not per-peer
// copies).
#include <gtest/gtest.h>

#include "load/driver.hpp"

namespace qsel::load {
namespace {

TEST(LoadLoopbackTest, ClosedLoopCommitsAndSharesFrames) {
  LoadConfig config;
  config.seed = 17;
  config.clients = 3;
  config.outstanding = 2;
  config.requests_per_client = 10;
  const LoadReport report = run_loopback(config);

  EXPECT_EQ(report.committed, 30u);
  EXPECT_EQ(report.latency.count(), 30u);
  EXPECT_GT(report.latency.p50(), 0u);
  EXPECT_GE(report.latency.p999(), report.latency.p50());
  EXPECT_GT(report.net_bytes, 0u);
  EXPECT_GT(report.frames_shared, 0u)
      << "broadcasts never used the zero-copy path";
  EXPECT_GT(report.duration_ns, 0u);
}

}  // namespace
}  // namespace qsel::load
