#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace qsel::sim {
namespace {

struct TestPayload final : Payload {
  explicit TestPayload(int v) : value(v) {}
  int value;
  std::string_view type_tag() const override { return "test"; }
  std::size_t wire_size() const override { return 10; }
};

struct Recorder final : Actor {
  struct Entry {
    ProcessId from;
    int value;
    SimTime at;
  };
  explicit Recorder(Simulator& s) : sim(&s) {}
  Simulator* sim;
  std::vector<Entry> received;
  void on_message(ProcessId from, const PayloadPtr& message) override {
    const auto* p = dynamic_cast<const TestPayload*>(message.get());
    ASSERT_NE(p, nullptr);
    received.push_back({from, p->value, sim->now()});
  }
};

NetworkConfig fixed_latency(SimDuration latency) {
  NetworkConfig config;
  config.base_latency = latency;
  config.jitter = 0;
  return config;
}

TEST(NetworkTest, DeliversWithConfiguredLatency) {
  Simulator sim;
  Network net(sim, 2, fixed_latency(1000), 1);
  Recorder a(sim);
  Recorder b(sim);
  net.attach(0, a);
  net.attach(1, b);
  net.send(0, 1, std::make_shared<TestPayload>(42));
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].from, 0u);
  EXPECT_EQ(b.received[0].value, 42);
  EXPECT_EQ(b.received[0].at, 1000u);
  EXPECT_TRUE(a.received.empty());
}

TEST(NetworkTest, JitterBoundedByLatencyBound) {
  Simulator sim;
  NetworkConfig config;
  config.base_latency = 1000;
  config.jitter = 500;
  Network net(sim, 2, config, 7);
  Recorder b(sim);
  Recorder a(sim);
  net.attach(0, a);
  net.attach(1, b);
  for (int i = 0; i < 200; ++i)
    net.send(0, 1, std::make_shared<TestPayload>(i));
  sim.run();
  ASSERT_EQ(b.received.size(), 200u);
  for (const auto& entry : b.received) {
    EXPECT_GE(entry.at, 1000u);
    EXPECT_LE(entry.at, net.latency_bound());
  }
}

TEST(NetworkTest, BroadcastReachesTargetsIncludingSelf) {
  Simulator sim;
  Network net(sim, 3, fixed_latency(10), 1);
  Recorder actors[3] = {Recorder(sim), Recorder(sim), Recorder(sim)};
  for (ProcessId i = 0; i < 3; ++i) net.attach(i, actors[i]);
  net.broadcast(0, ProcessSet::full(3), std::make_shared<TestPayload>(1));
  sim.run();
  EXPECT_EQ(actors[0].received.size(), 1u);  // self-delivery
  EXPECT_EQ(actors[0].received[0].at, 0u);   // local, same tick
  EXPECT_EQ(actors[1].received.size(), 1u);
  EXPECT_EQ(actors[2].received.size(), 1u);
}

TEST(NetworkTest, CrashedProcessNeitherSendsNorReceives) {
  Simulator sim;
  Network net(sim, 2, fixed_latency(10), 1);
  Recorder a(sim);
  Recorder b(sim);
  net.attach(0, a);
  net.attach(1, b);
  net.send(0, 1, std::make_shared<TestPayload>(1));  // in flight
  net.crash(1);
  net.send(1, 0, std::make_shared<TestPayload>(2));  // crashed sender
  sim.run();
  EXPECT_TRUE(b.received.empty());  // crashed before delivery
  EXPECT_TRUE(a.received.empty());
  EXPECT_TRUE(net.is_crashed(1));
}

TEST(NetworkTest, DisabledLinkDropsDirectionally) {
  Simulator sim;
  Network net(sim, 2, fixed_latency(10), 1);
  Recorder a(sim);
  Recorder b(sim);
  net.attach(0, a);
  net.attach(1, b);
  net.set_link_enabled(0, 1, false);
  EXPECT_FALSE(net.link_enabled(0, 1));
  EXPECT_TRUE(net.link_enabled(1, 0));
  net.send(0, 1, std::make_shared<TestPayload>(1));
  net.send(1, 0, std::make_shared<TestPayload>(2));
  sim.run();
  EXPECT_TRUE(b.received.empty());
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_EQ(a.received[0].value, 2);
}

TEST(NetworkTest, ExtraDelayModelsTimingFailure) {
  Simulator sim;
  Network net(sim, 2, fixed_latency(10), 1);
  Recorder b(sim);
  net.attach(1, b);
  net.set_link_extra_delay(0, 1, 990);
  net.send(0, 1, std::make_shared<TestPayload>(1));
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].at, 1000u);
}

TEST(NetworkTest, PartitionAndHeal) {
  Simulator sim;
  Network net(sim, 4, fixed_latency(10), 1);
  Recorder actors[4] = {Recorder(sim), Recorder(sim), Recorder(sim),
                        Recorder(sim)};
  for (ProcessId i = 0; i < 4; ++i) net.attach(i, actors[i]);
  net.partition(ProcessSet{0, 1}, ProcessSet{2, 3});
  net.send(0, 2, std::make_shared<TestPayload>(1));
  net.send(3, 1, std::make_shared<TestPayload>(2));
  net.send(0, 1, std::make_shared<TestPayload>(3));  // same side: flows
  sim.run();
  EXPECT_TRUE(actors[2].received.empty());
  EXPECT_TRUE(actors[1].received.size() == 1 &&
              actors[1].received[0].value == 3);
  net.heal_partition();
  net.send(0, 2, std::make_shared<TestPayload>(4));
  sim.run();
  ASSERT_EQ(actors[2].received.size(), 1u);
  EXPECT_EQ(actors[2].received[0].value, 4);
}

TEST(NetworkTest, FifoLinksPreserveOrderDespiteJitter) {
  Simulator sim;
  NetworkConfig config;
  config.base_latency = 100;
  config.jitter = 1000;  // jitter an order of magnitude above base
  config.fifo_links = true;
  Network net(sim, 2, config, 3);
  Recorder b(sim);
  net.attach(1, b);
  for (int i = 0; i < 100; ++i)
    net.send(0, 1, std::make_shared<TestPayload>(i));
  sim.run();
  ASSERT_EQ(b.received.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(b.received[static_cast<std::size_t>(i)].value, i);
}

TEST(NetworkTest, WithoutFifoJitterCanReorder) {
  Simulator sim;
  NetworkConfig config;
  config.base_latency = 100;
  config.jitter = 1000;
  config.fifo_links = false;
  Network net(sim, 2, config, 3);
  Recorder b(sim);
  net.attach(1, b);
  for (int i = 0; i < 200; ++i)
    net.send(0, 1, std::make_shared<TestPayload>(i));
  sim.run();
  ASSERT_EQ(b.received.size(), 200u);
  bool reordered = false;
  for (std::size_t i = 1; i < b.received.size(); ++i)
    if (b.received[i].value < b.received[i - 1].value) reordered = true;
  EXPECT_TRUE(reordered) << "with huge jitter some reorder is expected";
}

TEST(NetworkTest, PreGstExtraDelayOnlyBeforeGst) {
  Simulator sim;
  NetworkConfig config;
  config.base_latency = 100;
  config.jitter = 0;
  config.pre_gst_extra = 10000;
  config.gst = 50000;
  Network net(sim, 2, config, 9);
  Recorder b(sim);
  net.attach(1, b);
  net.send(0, 1, std::make_shared<TestPayload>(0));  // pre-GST
  sim.run();
  sim.run_until(60000);
  net.send(0, 1, std::make_shared<TestPayload>(1));  // post-GST
  sim.run();
  ASSERT_EQ(b.received.size(), 2u);
  // Post-GST delivery takes exactly base latency.
  EXPECT_EQ(b.received[1].at, 60000u + 100u);
}

TEST(NetworkTest, StatsCountMessagesAndBytes) {
  Simulator sim;
  Network net(sim, 3, fixed_latency(10), 1);
  Recorder b(sim);
  net.attach(1, b);
  net.send(0, 1, std::make_shared<TestPayload>(1));
  net.send(0, 1, std::make_shared<TestPayload>(2));
  net.send(2, 1, std::make_shared<TestPayload>(3));
  // Drops and crashes still count as *sent*.
  net.set_link_enabled(0, 1, false);
  net.send(0, 1, std::make_shared<TestPayload>(4));
  sim.run();
  EXPECT_EQ(net.stats().total_messages(), 4u);
  EXPECT_EQ(net.stats().total_bytes(), 40u);
  EXPECT_EQ(net.stats().by_type("test"), 4u);
  EXPECT_EQ(net.stats().by_link(0, 1), 3u);
  EXPECT_EQ(net.stats().by_sender(2), 1u);
  EXPECT_EQ(b.received.size(), 3u);
}

TEST(NetworkTest, SendHookObservesDeliveryTime) {
  Simulator sim;
  Network net(sim, 2, fixed_latency(250), 1);
  Recorder b(sim);
  net.attach(1, b);
  SimTime hook_delivery = 0;
  net.set_send_hook([&](ProcessId from, ProcessId to, const PayloadPtr&,
                        SimTime at) {
    EXPECT_EQ(from, 0u);
    EXPECT_EQ(to, 1u);
    hook_delivery = at;
  });
  net.send(0, 1, std::make_shared<TestPayload>(1));
  sim.run();
  EXPECT_EQ(hook_delivery, 250u);
}

TEST(NetworkTest, MessageToUnattachedProcessIsDropped) {
  Simulator sim;
  Network net(sim, 2, fixed_latency(10), 1);
  Recorder a(sim);
  net.attach(0, a);
  net.send(0, 1, std::make_shared<TestPayload>(1));
  EXPECT_NO_THROW(sim.run());
}

}  // namespace
}  // namespace qsel::sim
