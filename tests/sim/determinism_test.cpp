// Determinism contracts of the discrete-event simulator that the scenario
// fuzzer (and the chained trace digest) lean on: ties between events with
// identical timestamps break by scheduling order, and TimerHandle
// semantics (shared cancellation state, cancel-after-fire as a no-op)
// behave identically on every run.
#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace qsel::sim {
namespace {

TEST(SimDeterminismTest, DuplicateTimestampsRunInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  // Schedule in a deliberately scrambled call pattern, all at t = 100.
  sim.schedule_at(100, [&] { order.push_back(0); });
  sim.schedule_at(100, [&] {
    order.push_back(1);
    // An event scheduled *while running* at the same timestamp still runs
    // in this round, after everything scheduled earlier.
    sim.schedule_at(100, [&] { order.push_back(3); });
  });
  sim.schedule_at(100, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.now(), 100u);
}

TEST(SimDeterminismTest, InterleavedTimestampsStillSortByTimeFirst) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(200, [&] { order.push_back(20); });
  sim.schedule_at(100, [&] { order.push_back(10); });
  sim.schedule_at(200, [&] { order.push_back(21); });
  sim.schedule_at(100, [&] { order.push_back(11); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 21}));
}

TEST(SimDeterminismTest, CancelAfterFireIsANoOp) {
  Simulator sim;
  int fired = 0;
  TimerHandle timer = sim.schedule_timer(10, [&] { ++fired; });
  EXPECT_TRUE(timer.active());
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.active());
  timer.cancel();  // must not throw, unschedule anything, or re-arm
  EXPECT_FALSE(timer.active());
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(SimDeterminismTest, CopiedHandlesShareCancellation) {
  Simulator sim;
  int fired = 0;
  TimerHandle original = sim.schedule_timer(10, [&] { ++fired; });
  TimerHandle copy = original;
  copy.cancel();
  EXPECT_FALSE(original.active());
  EXPECT_FALSE(copy.active());
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(SimDeterminismTest, DestroyingAHandleDoesNotCancel) {
  Simulator sim;
  int fired = 0;
  { TimerHandle scoped = sim.schedule_timer(10, [&] { ++fired; }); }
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(SimDeterminismTest, DefaultConstructedHandleIsInertEverywhere) {
  TimerHandle handle;
  EXPECT_FALSE(handle.active());
  handle.cancel();  // no state to mutate
  EXPECT_FALSE(handle.active());
}

}  // namespace
}  // namespace qsel::sim
