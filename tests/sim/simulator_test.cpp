#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace qsel::sim {
namespace {

TEST(SimulatorTest, StartsAtZeroIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_TRUE(sim.idle());
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(SimulatorTest, TiesBreakInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5, [&] { order.push_back(1); });
  sim.schedule_at(5, [&] { order.push_back(2); });
  sim.schedule_at(5, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, EventsMayScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] {
    ++fired;
    sim.schedule_after(4, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 5u);
}

TEST(SimulatorTest, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::invalid_argument);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until(100);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 15u);
  sim.run_until(25);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator sim;
  sim.run_until(50);
  int fired = 0;
  sim.schedule_after(10, [&] { ++fired; });
  sim.run_for(10);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 60u);
}

TEST(SimulatorTest, MaxEventsCapStopsRunaway) {
  Simulator sim;
  std::uint64_t fired = 0;
  // A self-perpetuating event chain.
  std::function<void()> loop = [&] {
    ++fired;
    sim.schedule_after(1, loop);
  };
  sim.schedule_at(0, loop);
  const std::uint64_t processed = sim.run(1000);
  EXPECT_EQ(processed, 1000u);
  EXPECT_EQ(fired, 1000u);
}

TEST(SimulatorTest, CancelledTimerDoesNotFire) {
  Simulator sim;
  int fired = 0;
  TimerHandle timer = sim.schedule_timer(10, [&] { ++fired; });
  EXPECT_TRUE(timer.active());
  timer.cancel();
  EXPECT_FALSE(timer.active());
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, TimerFiresWhenNotCancelled) {
  Simulator sim;
  int fired = 0;
  sim.schedule_timer(10, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 10u);
}

TEST(SimulatorTest, CancelAfterFireIsHarmless) {
  Simulator sim;
  int fired = 0;
  TimerHandle timer = sim.schedule_timer(10, [&] { ++fired; });
  sim.run();
  timer.cancel();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, EventsProcessedCountsExecutedOnly) {
  Simulator sim;
  TimerHandle t = sim.schedule_timer(1, [] {});
  sim.schedule_at(2, [] {});
  t.cancel();
  sim.run();
  EXPECT_EQ(sim.events_processed(), 1u);
}

}  // namespace
}  // namespace qsel::sim
