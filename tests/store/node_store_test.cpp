// Durability subsystem tests: the WAL's corruption-tolerant recovery
// (torn tail, flipped byte, oversized length), the atomic snapshot's
// read-as-missing degradation, and the NodeStore join semantics that make
// recovery order- and duplicate-insensitive (snapshot ⊔ WAL records in
// any order; double recovery idempotent).
#include "store/node_store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "store/snapshot.hpp"
#include "store/wal.hpp"

namespace qsel::store {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "qsel_store_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string fresh_file(const std::string& name) {
  const std::string path = testing::TempDir() + "qsel_store_" + name;
  std::filesystem::remove(path);
  return path;
}

std::vector<std::uint8_t> bytes_of(const std::string& text) {
  return {text.begin(), text.end()};
}

WalOptions no_sync() {
  WalOptions options;
  options.sync_each_append = false;  // the "crashes" here outlive no process
  return options;
}

std::uint64_t file_size(const std::string& path) {
  return static_cast<std::uint64_t>(std::filesystem::file_size(path));
}

void truncate_file(const std::string& path, std::uint64_t size) {
  std::filesystem::resize_file(path, size);
}

void flip_byte(const std::string& path, std::uint64_t offset) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good());
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
}

// --- WAL ----------------------------------------------------------------

TEST(WalTest, EmptyOrMissingFileRecoversEmpty) {
  const std::string path = fresh_file("wal_empty.bin");
  {
    const WalScan scan = Wal::scan_file(path, no_sync());
    EXPECT_TRUE(scan.records.empty());
    EXPECT_EQ(scan.valid_bytes, 0u);
    EXPECT_FALSE(scan.truncated_tail);
  }
  std::ofstream(path, std::ios::binary).close();  // exists, zero bytes
  const WalScan scan = Wal::scan_file(path, no_sync());
  EXPECT_TRUE(scan.records.empty());
  EXPECT_FALSE(scan.truncated_tail);
}

TEST(WalTest, AppendsRoundTripAcrossReopen) {
  const std::string path = fresh_file("wal_roundtrip.bin");
  {
    Wal wal(path, no_sync());
    wal.append(bytes_of("one"));
    wal.append(bytes_of("two"));
    wal.append(bytes_of("three"));
  }
  Wal wal(path, no_sync());
  const WalScan& scan = wal.recovered();
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[0], bytes_of("one"));
  EXPECT_EQ(scan.records[1], bytes_of("two"));
  EXPECT_EQ(scan.records[2], bytes_of("three"));
  EXPECT_FALSE(scan.truncated_tail);
}

TEST(WalTest, TornTailIsTruncatedAndLogRemainsAppendable) {
  const std::string path = fresh_file("wal_torn.bin");
  std::uint64_t two_records = 0;
  {
    Wal wal(path, no_sync());
    wal.append(bytes_of("alpha"));
    wal.append(bytes_of("beta"));
    two_records = file_size(path);
    wal.append(bytes_of("gamma"));
  }
  // Kill mid-append: cut the third record in half.
  truncate_file(path, two_records + 10);
  {
    Wal wal(path, no_sync());
    ASSERT_EQ(wal.recovered().records.size(), 2u);
    EXPECT_TRUE(wal.recovered().truncated_tail);
    EXPECT_EQ(wal.recovered().valid_bytes, two_records);
    // The constructor repaired the file; the chain extends cleanly.
    wal.append(bytes_of("delta"));
  }
  Wal reopened(path, no_sync());
  ASSERT_EQ(reopened.recovered().records.size(), 3u);
  EXPECT_EQ(reopened.recovered().records[2], bytes_of("delta"));
  EXPECT_FALSE(reopened.recovered().truncated_tail);
}

TEST(WalTest, FlippedByteMidLogDiscardsTheSuffix) {
  const std::string path = fresh_file("wal_flip.bin");
  std::uint64_t one_record = 0;
  {
    Wal wal(path, no_sync());
    wal.append(bytes_of("keep me"));
    one_record = file_size(path);
    wal.append(bytes_of("corrupt me"));
    wal.append(bytes_of("unreachable"));
  }
  // Flip a payload byte of record 2 (past its length prefix + digest):
  // record 2 fails its chain digest, and record 3 — though intact on
  // disk — chains from a damaged predecessor, so both are discarded.
  flip_byte(path, one_record + 4 + 32);
  const WalScan scan = Wal::scan_file(path, no_sync());
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0], bytes_of("keep me"));
  EXPECT_TRUE(scan.truncated_tail);
  EXPECT_EQ(scan.valid_bytes, one_record);
}

TEST(WalTest, CorruptLengthPrefixCannotAllocateGigabytes) {
  const std::string path = fresh_file("wal_length.bin");
  std::uint64_t one_record = 0;
  {
    Wal wal(path, no_sync());
    wal.append(bytes_of("fine"));
    one_record = file_size(path);
    wal.append(bytes_of("victim"));
  }
  // Blast the second record's length prefix high byte: the scanner must
  // treat the absurd length as corruption, not try to read 1GB.
  flip_byte(path, one_record + 3);
  const WalScan scan = Wal::scan_file(path, no_sync());
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_TRUE(scan.truncated_tail);
}

TEST(WalTest, ResetEmptiesTheLog) {
  const std::string path = fresh_file("wal_reset.bin");
  {
    Wal wal(path, no_sync());
    wal.append(bytes_of("old"));
    wal.reset();
    wal.append(bytes_of("new"));
  }
  Wal wal(path, no_sync());
  ASSERT_EQ(wal.recovered().records.size(), 1u);
  EXPECT_EQ(wal.recovered().records[0], bytes_of("new"));
}

// --- snapshot -----------------------------------------------------------

TEST(SnapshotTest, RoundTripsAndReplacesAtomically) {
  const std::string path = fresh_file("snap_roundtrip.bin");
  EXPECT_EQ(read_snapshot(path), std::nullopt);  // missing = no snapshot
  write_snapshot(path, bytes_of("v1"));
  EXPECT_EQ(read_snapshot(path), bytes_of("v1"));
  write_snapshot(path, bytes_of("v2 longer payload"));
  EXPECT_EQ(read_snapshot(path), bytes_of("v2 longer payload"));
}

TEST(SnapshotTest, CorruptionReadsAsNoSnapshot) {
  const std::string path = fresh_file("snap_corrupt.bin");
  write_snapshot(path, bytes_of("sealed payload"));
  flip_byte(path, file_size(path) - 1);  // payload byte: seal fails
  EXPECT_EQ(read_snapshot(path), std::nullopt);
  write_snapshot(path, bytes_of("replaced"));
  EXPECT_EQ(read_snapshot(path), bytes_of("replaced"));
}

TEST(SnapshotTest, TruncatedFileReadsAsNoSnapshot) {
  const std::string path = fresh_file("snap_trunc.bin");
  write_snapshot(path, bytes_of("whole"));
  truncate_file(path, file_size(path) - 3);
  EXPECT_EQ(read_snapshot(path), std::nullopt);
}

// --- DurableNodeState ---------------------------------------------------

DurableNodeState make_state(Epoch epoch, std::vector<Epoch> row,
                            std::vector<SimDuration> timeouts) {
  DurableNodeState state;
  state.epoch = epoch;
  state.own_row = std::move(row);
  state.fd_timeouts = std::move(timeouts);
  return state;
}

TEST(DurableNodeStateTest, MergeIsCellwiseJoin) {
  DurableNodeState a = make_state(3, {0, 2, 1, 0}, {10, 40, 20, 10});
  const DurableNodeState b = make_state(2, {1, 0, 4, 0}, {30, 10, 10, 50});
  a.merge_from(b);
  EXPECT_EQ(a.epoch, 3u);
  EXPECT_EQ(a.own_row, (std::vector<Epoch>{1, 2, 4, 0}));
  EXPECT_EQ(a.fd_timeouts, (std::vector<SimDuration>{30, 40, 20, 50}));
}

TEST(DurableNodeStateTest, EncodeDecodeRoundTrips) {
  const DurableNodeState state = make_state(7, {0, 5, 0, 9}, {1, 2, 3, 4});
  const auto decoded = DurableNodeState::decode(state.encode(), 4);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, state);
}

TEST(DurableNodeStateTest, DecodeRejectsGarbageAndOversizedRows) {
  const std::vector<std::uint8_t> garbage{0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(DurableNodeState::decode(garbage, 4), std::nullopt);
  const DurableNodeState wide = make_state(1, {0, 0, 0, 0, 0, 0}, {});
  EXPECT_EQ(DurableNodeState::decode(wide.encode(), 4), std::nullopt);
}

// --- stores -------------------------------------------------------------

TEST(MemoryNodeStoreTest, RecoversTheJoinOfEverythingPersisted) {
  MemoryNodeStore store;
  EXPECT_EQ(store.recover(), std::nullopt);  // first boot
  store.persist(make_state(2, {0, 1, 0, 0}, {10, 10, 10, 10}));
  store.persist(make_state(5, {0, 0, 3, 0}, {10, 80, 10, 10}));
  const auto recovered = store.recover();
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->epoch, 5u);
  EXPECT_EQ(recovered->own_row, (std::vector<Epoch>{0, 1, 3, 0}));
  EXPECT_EQ(recovered->fd_timeouts, (std::vector<SimDuration>{10, 80, 10, 10}));
  // Double recovery is idempotent.
  EXPECT_EQ(store.recover(), recovered);
}

TEST(FileNodeStoreTest, PersistsAcrossReopenAndDoubleRecovery) {
  const std::string dir = fresh_dir("file_store_basic");
  FileNodeStoreOptions options;
  options.wal.sync_each_append = false;
  {
    FileNodeStore store(dir, 4, options);
    EXPECT_EQ(store.recover(), std::nullopt);
    store.persist(make_state(2, {0, 2, 0, 0}, {10, 10, 10, 10}));
    store.persist(make_state(4, {0, 2, 4, 0}, {10, 20, 10, 10}));
  }
  FileNodeStore store(dir, 4, options);
  const auto first = store.recover();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->epoch, 4u);
  EXPECT_EQ(first->own_row, (std::vector<Epoch>{0, 2, 4, 0}));
  EXPECT_EQ(store.recover(), first);  // idempotent double recovery
}

TEST(FileNodeStoreTest, SameInstanceRecoverySeesEveryPersist) {
  // A node can restart while its store object survives (LoopbackCluster
  // rebuilds only the NodeProcess): recover() must then return the join
  // of everything persisted through this instance, not the stale
  // boot-time WAL scan.
  const std::string dir = fresh_dir("file_store_same_instance");
  FileNodeStoreOptions options;
  options.wal.sync_each_append = false;
  FileNodeStore store(dir, 4, options);
  EXPECT_EQ(store.recover(), std::nullopt);
  store.persist(make_state(2, {0, 2, 0, 0}, {10, 10, 10, 10}));
  store.persist(make_state(5, {0, 2, 0, 5}, {10, 40, 10, 10}));
  const auto recovered = store.recover();
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->epoch, 5u);
  EXPECT_EQ(recovered->own_row, (std::vector<Epoch>{0, 2, 0, 5}));
  EXPECT_EQ(recovered->fd_timeouts,
            (std::vector<SimDuration>{10, 40, 10, 10}));
}

TEST(FileNodeStoreTest, SnapshotPlusLogReplayAgreesWithPureLog) {
  // compact_every=2 forces snapshot+reset mid-history: recovery must join
  // the snapshot with the post-compact WAL records and land on the same
  // state a pure log would have produced.
  const std::string dir = fresh_dir("file_store_compact");
  FileNodeStoreOptions options;
  options.compact_every = 2;
  options.wal.sync_each_append = false;
  DurableNodeState expected;
  {
    FileNodeStore store(dir, 4, options);
    for (Epoch e = 2; e <= 7; ++e) {
      std::vector<Epoch> row(4, 0);
      row[static_cast<std::size_t>(e) % 4] = e;
      const auto state =
          make_state(e, row, {10 * e, 10, 10, 10});
      store.persist(state);
      if (e == 2) {
        expected = state;
      } else {
        expected.merge_from(state);
      }
    }
  }
  FileNodeStore store(dir, 4, options);
  const auto recovered = store.recover();
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, expected);
}

TEST(FileNodeStoreTest, FlippedWalByteLosesRecencyNeverConsistency) {
  const std::string dir = fresh_dir("file_store_flip");
  FileNodeStoreOptions options;
  options.wal.sync_each_append = false;
  std::uint64_t one_record = 0;
  {
    FileNodeStore store(dir, 4, options);
    store.persist(make_state(3, {0, 3, 0, 0}, {10, 10, 10, 10}));
    one_record = file_size(dir + "/wal.bin");
    store.persist(make_state(6, {0, 3, 6, 0}, {10, 10, 90, 10}));
  }
  flip_byte(dir + "/wal.bin", one_record + 4 + 32);
  FileNodeStore store(dir, 4, options);
  const auto recovered = store.recover();
  ASSERT_TRUE(recovered.has_value());
  // The damaged suffix is gone; the surviving prefix is consistent.
  EXPECT_EQ(recovered->epoch, 3u);
  EXPECT_EQ(recovered->own_row, (std::vector<Epoch>{0, 3, 0, 0}));
}

TEST(FileNodeStoreTest, SyncedAppendsSurviveByDefault) {
  // One store with real fdatasync, to exercise the default path at least
  // once (the other tests disable it for speed).
  const std::string dir = fresh_dir("file_store_sync");
  {
    FileNodeStore store(dir, 4);
    store.persist(make_state(2, {0, 0, 2, 0}, {10, 10, 10, 10}));
  }
  FileNodeStore store(dir, 4);
  const auto recovered = store.recover();
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->epoch, 2u);
}

}  // namespace
}  // namespace qsel::store
