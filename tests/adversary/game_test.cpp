#include "adversary/follower_game.hpp"
#include "adversary/quorum_game.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/combinatorics.hpp"
#include "graph/independent_set.hpp"

namespace qsel::adversary {
namespace {

// Reproduces the paper's simulation claim (Section VII-A): Algorithm 1
// issues at most C(f+2,2) quorums — the initial quorum plus
// C(f+2,2) - 1 adversary-forced changes — and the adversary can actually
// reach that maximum (Theorem 4 tight for Algorithm 1).
TEST(QuorumGameTest, ExactMaxMatchesBinomialBound) {
  for (int f = 1; f <= 4; ++f) {
    const auto n = static_cast<ProcessId>(3 * f + 1);
    QuorumGame game(QuorumGameConfig{n, f, 0});
    const GameResult exact = game.max_changes();
    const std::uint64_t quorums = exact.changes + 1;  // incl. the initial one
    EXPECT_EQ(quorums,
              binomial(static_cast<std::uint64_t>(f) + 2, 2))
        << "f=" << f;
    // Theorem 3's proved upper bound holds (and is loose for f >= 3).
    EXPECT_LE(exact.changes,
              static_cast<std::uint64_t>(f) * (static_cast<unsigned>(f) + 1));
  }
}

TEST(QuorumGameTest, HoldsForMinimalNTwoFPlusOne) {
  // The bound is about f, not n: with n = 2f+1 (trusted-component-style
  // systems) the same worst case applies.
  for (int f = 1; f <= 3; ++f) {
    const auto n = static_cast<ProcessId>(2 * f + 1);
    QuorumGame game(QuorumGameConfig{n, f, 0});
    EXPECT_EQ(game.max_changes().changes + 1,
              binomial(static_cast<std::uint64_t>(f) + 2, 2))
        << "f=" << f;
  }
}

TEST(QuorumGameTest, GreedyMatchesExactAtSmallF) {
  for (int f = 1; f <= 4; ++f) {
    const auto n = static_cast<ProcessId>(3 * f + 1);
    QuorumGame game(QuorumGameConfig{n, f, 0});
    EXPECT_EQ(game.greedy_changes().changes, game.max_changes().changes)
        << "f=" << f;
  }
}

TEST(QuorumGameTest, SequencesAreValidPlays) {
  const int f = 3;
  QuorumGame game(QuorumGameConfig{10, f, 0});
  const GameResult result = game.max_changes();
  graph::SimpleGraph g(10);
  std::set<std::pair<ProcessId, ProcessId>> used;
  for (auto [u, v] : result.suspicions) {
    // Rule (1): both endpoints in the current quorum.
    const ProcessSet quorum = game.quorum_for(g);
    EXPECT_TRUE(quorum.contains(u) && quorum.contains(v));
    // Each unordered pair used once.
    EXPECT_TRUE(used.emplace(std::min(u, v), std::max(u, v)).second);
    g.add_edge(u, v);
  }
  // Realizability: all suspicions attributable to f faulty processes.
  EXPECT_TRUE(graph::vertex_cover_within(g, f).has_value());
  EXPECT_EQ(result.suspicions.size(), result.changes);
}

// Figure 5's setting: f = 3, suspicions confined to 5 = f+2 nodes; all
// suspicions must be attributable to the faulty candidates {p1,p2,p5} or
// {p3,p4,p5}-style choices, i.e. a vertex cover of size f exists as long
// as one pair stays unused.
TEST(QuorumGameTest, Figure5CoreHasCoverSizedF) {
  const int f = 3;
  graph::SimpleGraph g(10);
  // Use all pairs among 5 nodes except (c,d) = (2,3):
  for (ProcessId u = 0; u < 5; ++u)
    for (ProcessId v = u + 1; v < 5; ++v)
      if (!(u == 2 && v == 3)) g.add_edge(u, v);
  const auto cover = graph::vertex_cover_within(g, f);
  ASSERT_TRUE(cover.has_value());
  // F = F+2 \ {c,d} covers everything.
  EXPECT_TRUE(graph::is_vertex_cover(g, ProcessSet{0, 1, 4}));
  // With the full clique on f+2 nodes, f faulty no longer suffice.
  g.add_edge(2, 3);
  EXPECT_FALSE(graph::vertex_cover_within(g, f).has_value());
}

// Theorem 9 tightness: Follower Selection caps at 3f+1 quorums per epoch
// and the adversary can reach it.
TEST(FollowerGameTest, ExactMaxIsThreeFChanges) {
  for (int f = 1; f <= 2; ++f) {
    const auto n = static_cast<ProcessId>(3 * f + 1);
    FollowerGame game(FollowerGameConfig{n, f, 0});
    const FollowerGameResult exact = game.max_changes();
    EXPECT_EQ(exact.leader_changes, static_cast<std::uint64_t>(3 * f));
    EXPECT_EQ(exact.final_leader, static_cast<ProcessId>(3 * f));
  }
}

TEST(FollowerGameTest, ConstructiveWalkReachesThreeF) {
  for (int f = 1; f <= 5; ++f) {
    const auto n = static_cast<ProcessId>(3 * f + 1);
    FollowerGame game(FollowerGameConfig{n, f, 0});
    const FollowerGameResult result = game.constructive_changes();
    EXPECT_EQ(result.leader_changes, static_cast<std::uint64_t>(3 * f))
        << "f=" << f;
    EXPECT_EQ(result.final_leader, static_cast<ProcessId>(3 * f));
  }
}

TEST(FollowerGameTest, ConstructiveSuspicionsAttributableToF) {
  for (int f = 1; f <= 6; ++f) {
    const auto n = static_cast<ProcessId>(3 * f + 1);
    FollowerGame game(FollowerGameConfig{n, f, 0});
    const FollowerGameResult result = game.constructive_changes();
    graph::SimpleGraph g(n);
    for (auto [u, v] : result.suspicions) g.add_edge(u, v);
    EXPECT_TRUE(graph::vertex_cover_within(g, f).has_value());
    // In fact the faulty set is exactly {0..f-1}: every suspicion touches
    // it.
    EXPECT_TRUE(graph::is_vertex_cover(
        g, ProcessSet::range(0, static_cast<ProcessId>(f))));
  }
}

// Asymptotic separation the paper's abstract highlights: O(f) quorum
// changes for Follower Selection vs Omega(f^2) for general Quorum
// Selection. The crossover sits at f = 4: 3f+1 = C(f+2,2) = 10 at f = 3,
// and Follower Selection wins strictly from f = 4 on.
TEST(FollowerGameTest, FollowerSelectionBeatsQuadraticLowerBound) {
  for (int f = 2; f <= 4; ++f) {
    const auto n = static_cast<ProcessId>(3 * f + 1);
    const std::uint64_t qs_quorums =
        QuorumGame(QuorumGameConfig{n, f, 0}).max_changes().changes + 1;
    const std::uint64_t fs_cap = static_cast<std::uint64_t>(3 * f) + 1;
    EXPECT_EQ(qs_quorums, binomial(static_cast<std::uint64_t>(f) + 2, 2));
    if (f == 3) {
      EXPECT_EQ(fs_cap, qs_quorums);
    }
    if (f >= 4) {
      EXPECT_LT(fs_cap, qs_quorums);
    }
  }
}

TEST(FollowerGameTest, LeaderMonotoneThroughAnyPlay) {
  FollowerGame game(FollowerGameConfig{7, 2, 0});
  const auto result = game.max_changes();
  graph::SimpleGraph g(7);
  ProcessId last = game.leader_for(g);
  for (auto [u, v] : result.suspicions) {
    g.add_edge(u, v);
    const ProcessId now = game.leader_for(g);
    EXPECT_GE(now, last);
    last = now;
  }
}

}  // namespace
}  // namespace qsel::adversary
