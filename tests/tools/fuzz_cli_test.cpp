// qsel_fuzz CLI contract tests, driven through the real binary (path baked
// in as QSEL_FUZZ_BIN): --replay on a missing, corrupt or invalid
// reproducer must be a clean diagnostic and exit code 2 — never an abort
// from an assertion deep inside the cluster — and a well-formed reproducer
// must replay to exit code 0.
#include <sys/wait.h>

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "scenario/schedule.hpp"

namespace qsel {
namespace {

int replay_exit_code(const std::string& path) {
  const std::string command = std::string(QSEL_FUZZ_BIN) + " --replay " +
                              path + " >/dev/null 2>&1";
  const int status = std::system(command.c_str());
  EXPECT_TRUE(WIFEXITED(status)) << "qsel_fuzz did not exit normally "
                                    "(signal/abort?) on " << path;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Runs `qsel_fuzz <args>`, captures combined stdout+stderr, returns the
/// exit code (or -1 on abnormal exit).
int run_fuzz(const std::string& args, std::string* output) {
  const std::string command =
      std::string(QSEL_FUZZ_BIN) + " " + args + " 2>&1";
  FILE* pipe = ::popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  if (pipe == nullptr) return -1;
  output->clear();
  char buffer[4096];
  std::size_t got;
  while ((got = ::fread(buffer, 1, sizeof buffer, pipe)) > 0)
    output->append(buffer, got);
  const int status = ::pclose(pipe);
  EXPECT_TRUE(WIFEXITED(status))
      << "qsel_fuzz did not exit normally on: " << args << "\n" << *output;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string temp_file(const char* name, const std::string& contents) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << contents;
  return path;
}

TEST(FuzzCliTest, ReplayMissingFileExitsTwo) {
  EXPECT_EQ(replay_exit_code(::testing::TempDir() +
                             "qsel_no_such_reproducer.json"),
            2);
}

TEST(FuzzCliTest, ReplayCorruptJsonExitsTwo) {
  const std::string path =
      temp_file("qsel_corrupt_reproducer.json", "{\"protocol\": \"qs\", ");
  EXPECT_EQ(replay_exit_code(path), 2);
}

TEST(FuzzCliTest, ReplayGarbageBytesExitsTwo) {
  const std::string path = temp_file("qsel_garbage_reproducer.json",
                                     std::string(64, '\xff'));
  EXPECT_EQ(replay_exit_code(path), 2);
}

TEST(FuzzCliTest, ReplayInvalidScheduleExitsTwo) {
  // Parses fine but violates the schedule invariants: an unhealed
  // partition. Hand-edited reproducers must fail the validate() gate, not
  // trip an assertion inside run_schedule.
  scenario::Schedule schedule;
  schedule.protocol = scenario::Protocol::kQuorumSelection;
  schedule.n = 4;
  schedule.f = 1;
  schedule.actions.push_back({100'000'000, scenario::FaultKind::kPartition,
                              kNoProcess, kNoProcess, 0b0011});
  const std::string path =
      temp_file("qsel_invalid_reproducer.json", schedule.to_json());
  EXPECT_EQ(replay_exit_code(path), 2);
}

TEST(FuzzCliTest, ReplayNamesTheViolatedOracle) {
  // --test-bug stuck injects a synthetic epoch_progress violation into an
  // otherwise-clean replay: the diagnostic must NAME the failing oracle
  // (a bare "exit 1" leaves the oracle hunt to the human) and exit 1.
  scenario::Schedule schedule;
  schedule.protocol = scenario::Protocol::kQuorumSelection;
  schedule.n = 4;
  schedule.f = 1;
  ASSERT_EQ(schedule.validate(), std::nullopt);
  const std::string path =
      temp_file("qsel_stuck_reproducer.json", schedule.to_json());
  std::string output;
  EXPECT_EQ(run_fuzz("--replay " + path + " --test-bug stuck", &output), 1);
  EXPECT_NE(output.find("violated oracles"), std::string::npos) << output;
  EXPECT_NE(output.find("epoch_progress"), std::string::npos) << output;
}

TEST(FuzzCliTest, ReplayPrintsFirstDivergingEventOnNondeterminism) {
  // --test-bug nondet forces the two determinism-check runs apart; the
  // diagnostic must print the first trace event where they diverge.
  scenario::Schedule schedule;
  schedule.protocol = scenario::Protocol::kQuorumSelection;
  schedule.n = 4;
  schedule.f = 1;
  ASSERT_EQ(schedule.validate(), std::nullopt);
  const std::string path =
      temp_file("qsel_nondet_reproducer.json", schedule.to_json());
  std::string output;
  EXPECT_EQ(run_fuzz("--replay " + path + " --test-bug nondet", &output), 1);
  EXPECT_NE(output.find("NOT DETERMINISTIC"), std::string::npos) << output;
  EXPECT_NE(output.find("diverg"), std::string::npos) << output;
}

TEST(FuzzCliTest, UnknownTestBugExitsTwo) {
  std::string output;
  EXPECT_EQ(run_fuzz("--replay x.json --test-bug banana", &output), 2);
}

TEST(FuzzCliTest, ReplayValidScheduleExitsZero) {
  // A small fault-free schedule: replay runs it twice (determinism check)
  // and must report clean oracles.
  scenario::Schedule schedule;
  schedule.protocol = scenario::Protocol::kQuorumSelection;
  schedule.n = 4;
  schedule.f = 1;
  ASSERT_EQ(schedule.validate(), std::nullopt);
  const std::string path =
      temp_file("qsel_valid_reproducer.json", schedule.to_json());
  EXPECT_EQ(replay_exit_code(path), 0);
}

}  // namespace
}  // namespace qsel
