// qsel_load CLI contract tests, driven through the real binary (path
// baked in as QSEL_LOAD_BIN): bad arguments are a clean usage diagnostic
// and exit 2, a zero-length run is a clean empty report, and --json
// output is bit-identical for the same (config, seed) on the sim
// substrate.
#include <sys/wait.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace qsel {
namespace {

/// Runs `qsel_load <args>`, captures combined stdout+stderr, returns the
/// exit code (or -1 on abnormal exit).
int run_load(const std::string& args, std::string* output) {
  const std::string command =
      std::string(QSEL_LOAD_BIN) + " " + args + " 2>&1";
  FILE* pipe = ::popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  if (pipe == nullptr) return -1;
  output->clear();
  char buffer[4096];
  std::size_t got;
  while ((got = ::fread(buffer, 1, sizeof buffer, pipe)) > 0)
    output->append(buffer, got);
  const int status = ::pclose(pipe);
  EXPECT_TRUE(WIFEXITED(status))
      << "qsel_load did not exit normally on: " << args << "\n" << *output;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(LoadCliTest, UnknownFlagExitsTwo) {
  std::string output;
  EXPECT_EQ(run_load("--no-such-flag", &output), 2);
  EXPECT_NE(output.find("usage:"), std::string::npos) << output;
}

TEST(LoadCliTest, MissingFlagValueExitsTwo) {
  std::string output;
  EXPECT_EQ(run_load("--clients", &output), 2);
}

TEST(LoadCliTest, NonNumericValueExitsTwo) {
  std::string output;
  EXPECT_EQ(run_load("--seed banana", &output), 2);
}

TEST(LoadCliTest, BadSubstrateExitsTwo) {
  std::string output;
  EXPECT_EQ(run_load("--substrate carrier-pigeon", &output), 2);
}

TEST(LoadCliTest, ZeroValuedShapeExitsTwo) {
  std::string output;
  EXPECT_EQ(run_load("--clients 0", &output), 2);
  EXPECT_EQ(run_load("--window 0", &output), 2);
  EXPECT_EQ(run_load("--batch 0", &output), 2);
}

TEST(LoadCliTest, ZeroDurationIsACleanEmptyReport) {
  std::string output;
  EXPECT_EQ(run_load("--duration-ms 0 --json", &output), 0);
  EXPECT_NE(output.find("\"committed\":0"), std::string::npos) << output;
  EXPECT_NE(output.find("\"history_error\":\"\""), std::string::npos)
      << output;
}

TEST(LoadCliTest, JsonIsBitIdenticalForSameConfigAndSeed) {
  const std::string args =
      "--seed 9 --clients 4 --outstanding 4 --requests 10 --zipf 0.9 --json";
  std::string first, second;
  EXPECT_EQ(run_load(args, &first), 0);
  EXPECT_EQ(run_load(args, &second), 0);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"committed\":40"), std::string::npos) << first;
}

TEST(LoadCliTest, DifferentSeedsDiverge) {
  std::string a, b;
  EXPECT_EQ(run_load("--seed 1 --requests 5 --json", &a), 0);
  EXPECT_EQ(run_load("--seed 2 --requests 5 --json", &b), 0);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace qsel
