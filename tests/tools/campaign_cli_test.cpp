// qsel_campaign CLI contract tests, driven through the real binary (path
// baked in as QSEL_CAMPAIGN_BIN).
//
// The load-bearing property is determinism: the same (corpus, flags) must
// produce a bit-identical JSON summary across two separate processes —
// any divergence means the engine read the clock, iterated an unordered
// container, or leaked address-dependent state into the trajectory, and
// every pinned campaign result (A/B numbers, CI smoke) silently rots.
#include <sys/wait.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/schedule.hpp"

namespace qsel {
namespace {

int run_campaign_cli(const std::string& args, std::string* output) {
  const std::string command =
      std::string(QSEL_CAMPAIGN_BIN) + " " + args + " 2>&1";
  FILE* pipe = ::popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  if (pipe == nullptr) return -1;
  output->clear();
  char buffer[4096];
  std::size_t got;
  while ((got = ::fread(buffer, 1, sizeof buffer, pipe)) > 0)
    output->append(buffer, got);
  const int status = ::pclose(pipe);
  EXPECT_TRUE(WIFEXITED(status))
      << "qsel_campaign did not exit normally on: " << args << "\n"
      << *output;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::string write_reproducer(const char* name) {
  scenario::Schedule schedule;
  schedule.protocol = scenario::Protocol::kQuorumSelection;
  schedule.n = 4;
  schedule.f = 1;
  EXPECT_EQ(schedule.validate(), std::nullopt);
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << schedule.to_json();
  return path;
}

TEST(CampaignCliTest, TwoRunsProduceBitIdenticalJson) {
  const std::string json_a = ::testing::TempDir() + "qsel_campaign_a.json";
  const std::string json_b = ::testing::TempDir() + "qsel_campaign_b.json";
  const std::string flags = "--budget 3 --seed 11 --protocols qs";
  std::string out_a;
  std::string out_b;
  ASSERT_EQ(run_campaign_cli(flags + " --json " + json_a, &out_a), 0)
      << out_a;
  ASSERT_EQ(run_campaign_cli(flags + " --json " + json_b, &out_b), 0)
      << out_b;
  EXPECT_EQ(out_a, out_b);
  const std::string a = read_file(json_a);
  EXPECT_EQ(a, read_file(json_b));
  EXPECT_FALSE(a.empty());
}

TEST(CampaignCliTest, ReplayIsDeterministicAndNamesEveryProtocol) {
  const std::string path = write_reproducer("qsel_campaign_replay.json");
  std::string first;
  std::string second;
  EXPECT_EQ(run_campaign_cli("--replay " + path, &first), 0) << first;
  EXPECT_EQ(run_campaign_cli("--replay " + path, &second), 0);
  EXPECT_EQ(first, second);
  for (const char* name : {"qs", "fs", "bchain", "pbft"})
    EXPECT_NE(first.find(name), std::string::npos) << first;
  EXPECT_NE(first.find("signature"), std::string::npos) << first;
}

TEST(CampaignCliTest, ReplayMissingFileExitsTwo) {
  std::string output;
  EXPECT_EQ(run_campaign_cli("--replay " + ::testing::TempDir() +
                                 "qsel_campaign_no_such.json",
                             &output),
            2);
}

TEST(CampaignCliTest, UnknownFlagExitsTwo) {
  std::string output;
  EXPECT_EQ(run_campaign_cli("--no-such-flag", &output), 2);
  EXPECT_NE(output.find("usage"), std::string::npos) << output;
}

TEST(CampaignCliTest, BadProtocolListExitsTwo) {
  std::string output;
  EXPECT_EQ(run_campaign_cli("--protocols qs,banana", &output), 2);
}

TEST(CampaignCliTest, RequireNewSignaturesFloorFailsClosed) {
  // A budget-0 campaign cannot discover anything beyond the (empty) seed
  // corpus, so an impossible floor must exit 1 with a diagnostic.
  std::string output;
  EXPECT_EQ(run_campaign_cli(
                "--budget 0 --protocols qs --require-new-signatures 1",
                &output),
            1);
  EXPECT_NE(output.find("required 1"), std::string::npos) << output;
}

}  // namespace
}  // namespace qsel
