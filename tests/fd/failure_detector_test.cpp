#include "fd/failure_detector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace qsel::fd {
namespace {

struct DummyPayload final : sim::Payload {
  explicit DummyPayload(int k = 0) : kind(k) {}
  int kind;
  std::string_view type_tag() const override { return "dummy"; }
  std::size_t wire_size() const override { return 1; }
};

struct Fixture {
  sim::Simulator sim;
  std::vector<ProcessSet> published;
  FailureDetector fd;

  explicit Fixture(FailureDetectorConfig config = {})
      : fd(sim, 0, 4, config,
           [this](ProcessSet s) { published.push_back(s); }) {}

  static FailureDetector::Predicate any() {
    return [](ProcessId, const sim::PayloadPtr&) { return true; };
  }
  static FailureDetector::Predicate kind(int k) {
    return [k](ProcessId, const sim::PayloadPtr& m) {
      auto* p = dynamic_cast<const DummyPayload*>(m.get());
      return p != nullptr && p->kind == k;
    };
  }
};

TEST(FailureDetectorTest, InitiallySuspectsNobody) {
  Fixture fx;
  EXPECT_TRUE(fx.fd.suspected().empty());
  fx.sim.run();
  EXPECT_TRUE(fx.published.empty());
}

// Expectation completeness: an unmatched, uncancelled expectation leads to
// a suspicion.
TEST(FailureDetectorTest, TimeoutRaisesSuspicion) {
  Fixture fx;
  fx.fd.expect(2, Fixture::any(), "msg");
  fx.sim.run();
  EXPECT_EQ(fx.fd.suspected(), ProcessSet{2});
  ASSERT_EQ(fx.published.size(), 1u);
  EXPECT_EQ(fx.published[0], ProcessSet{2});
  EXPECT_EQ(fx.fd.suspicions_raised(), 1u);
}

TEST(FailureDetectorTest, MatchingMessageBeforeTimeoutPreventsSuspicion) {
  Fixture fx;
  fx.fd.expect(2, Fixture::any(), "msg");
  fx.sim.run_until(100);  // well before the timeout
  fx.fd.on_receive(2, std::make_shared<DummyPayload>());
  fx.sim.run();
  EXPECT_TRUE(fx.fd.suspected().empty());
  EXPECT_TRUE(fx.published.empty());
}

// PeerReview-style cancellation: a late message cancels the suspicion.
TEST(FailureDetectorTest, LateMessageCancelsSuspicion) {
  Fixture fx;
  fx.fd.expect(2, Fixture::any(), "msg");
  fx.sim.run();  // timeout fires
  EXPECT_EQ(fx.fd.suspected(), ProcessSet{2});
  fx.fd.on_receive(2, std::make_shared<DummyPayload>());
  fx.sim.run();
  EXPECT_TRUE(fx.fd.suspected().empty());
  ASSERT_EQ(fx.published.size(), 2u);
  EXPECT_EQ(fx.published[1], ProcessSet{});
  EXPECT_EQ(fx.fd.suspicions_cancelled(), 1u);
}

// Eventual strong accuracy mechanism: each false suspicion doubles the
// timeout (up to the cap).
TEST(FailureDetectorTest, TimeoutDoublesOnFalseSuspicion) {
  FailureDetectorConfig config;
  config.initial_timeout = 1000;
  config.max_timeout = 3000;
  Fixture fx(config);
  EXPECT_EQ(fx.fd.timeout_for(2), 1000u);
  fx.fd.expect(2, Fixture::any(), "msg");
  fx.sim.run();
  fx.fd.on_receive(2, std::make_shared<DummyPayload>());  // late
  EXPECT_EQ(fx.fd.timeout_for(2), 2000u);
  fx.fd.expect(2, Fixture::any(), "msg");
  fx.sim.run();
  fx.fd.on_receive(2, std::make_shared<DummyPayload>());
  EXPECT_EQ(fx.fd.timeout_for(2), 3000u);  // capped
  // Other processes keep their own timeout.
  EXPECT_EQ(fx.fd.timeout_for(1), 1000u);
}

TEST(FailureDetectorTest, NonAdaptiveKeepsTimeout) {
  FailureDetectorConfig config;
  config.initial_timeout = 1000;
  config.adaptive = false;
  Fixture fx(config);
  fx.fd.expect(2, Fixture::any(), "msg");
  fx.sim.run();
  fx.fd.on_receive(2, std::make_shared<DummyPayload>());
  EXPECT_EQ(fx.fd.timeout_for(2), 1000u);
}

TEST(FailureDetectorTest, PredicateFiltersMessages) {
  Fixture fx;
  fx.fd.expect(2, Fixture::kind(7), "kind7");
  fx.fd.on_receive(2, std::make_shared<DummyPayload>(3));  // wrong kind
  fx.sim.run();
  EXPECT_EQ(fx.fd.suspected(), ProcessSet{2});
  fx.fd.on_receive(2, std::make_shared<DummyPayload>(7));
  fx.sim.run();
  EXPECT_TRUE(fx.fd.suspected().empty());
}

TEST(FailureDetectorTest, MessageFromOtherProcessDoesNotMatch) {
  Fixture fx;
  fx.fd.expect(2, Fixture::any(), "msg");
  fx.fd.on_receive(3, std::make_shared<DummyPayload>());
  fx.sim.run();
  EXPECT_EQ(fx.fd.suspected(), ProcessSet{2});
}

// Detection completeness: DETECTED is permanent; no message un-suspects.
TEST(FailureDetectorTest, DetectedIsPermanent) {
  Fixture fx;
  fx.fd.detected(3);
  fx.sim.run();
  EXPECT_EQ(fx.fd.suspected(), ProcessSet{3});
  EXPECT_EQ(fx.fd.detected_set(), ProcessSet{3});
  fx.fd.on_receive(3, std::make_shared<DummyPayload>());
  fx.sim.run();
  EXPECT_EQ(fx.fd.suspected(), ProcessSet{3});
  // Duplicate detection publishes nothing new.
  fx.fd.detected(3);
  fx.sim.run();
  EXPECT_EQ(fx.published.size(), 1u);
}

TEST(FailureDetectorTest, CancelAllDropsExpectationsAndTheirSuspicions) {
  Fixture fx;
  fx.fd.expect(1, Fixture::any(), "a");
  fx.fd.expect(2, Fixture::any(), "b");
  fx.sim.run();
  EXPECT_EQ(fx.fd.suspected(), (ProcessSet{1, 2}));
  fx.fd.cancel_all();
  fx.sim.run();
  EXPECT_TRUE(fx.fd.suspected().empty());
  // Cancelled expectations never fire later.
  fx.sim.run_for(10'000'000'000);
  EXPECT_TRUE(fx.fd.suspected().empty());
}

TEST(FailureDetectorTest, CancelAllKeepsDetected) {
  Fixture fx;
  fx.fd.detected(1);
  fx.fd.expect(2, Fixture::any(), "b");
  fx.sim.run();
  EXPECT_EQ(fx.fd.suspected(), (ProcessSet{1, 2}));
  fx.fd.cancel_all();
  fx.sim.run();
  EXPECT_EQ(fx.fd.suspected(), ProcessSet{1});
}

// Repeated omission: suspicion can be raised and cancelled repeatedly, and
// each cycle is observable (eventual detection, Section II).
TEST(FailureDetectorTest, RepeatedOmissionRaisesRepeatedSuspicions) {
  Fixture fx;
  for (int round = 0; round < 5; ++round) {
    fx.fd.expect(2, Fixture::any(), "hb");
    fx.sim.run();
    EXPECT_EQ(fx.fd.suspected(), ProcessSet{2});
    fx.fd.on_receive(2, std::make_shared<DummyPayload>());
    fx.sim.run();
    EXPECT_TRUE(fx.fd.suspected().empty());
  }
  EXPECT_EQ(fx.fd.suspicions_raised(), 5u);
  EXPECT_EQ(fx.fd.suspicions_cancelled(), 5u);
}

TEST(FailureDetectorTest, OneMessageMatchesAllPendingExpectations) {
  Fixture fx;
  fx.fd.expect(2, Fixture::any(), "a");
  fx.fd.expect(2, Fixture::any(), "b");
  fx.fd.on_receive(2, std::make_shared<DummyPayload>());
  fx.sim.run();
  EXPECT_TRUE(fx.fd.suspected().empty());
  EXPECT_EQ(fx.fd.expectations_issued(), 2u);
}

TEST(FailureDetectorTest, MultipleProcessesSuspectedTogether) {
  Fixture fx;
  fx.fd.expect(1, Fixture::any(), "a");
  fx.fd.expect(2, Fixture::any(), "b");
  fx.fd.expect(3, Fixture::any(), "c");
  fx.sim.run();
  EXPECT_EQ(fx.fd.suspected(), (ProcessSet{1, 2, 3}));
  // The published sets grow monotonically here: {1}, {1,2}, {1,2,3} (three
  // timeouts in scheduling order).
  ASSERT_EQ(fx.published.size(), 3u);
  EXPECT_EQ(fx.published.back(), (ProcessSet{1, 2, 3}));
}

TEST(FailureDetectorTest, SuspectedPublishedAsSeparateEvent) {
  // The SUSPECTED callback must not run inside expect()/on_receive()
  // callers (Section IV module-event ordering).
  Fixture fx;
  bool callback_ran = false;
  FailureDetectorConfig config;
  sim::Simulator sim2;
  FailureDetector fd2(sim2, 0, 4, config,
                      [&](ProcessSet) { callback_ran = true; });
  fd2.detected(1);
  EXPECT_FALSE(callback_ran);  // deferred
  sim2.run();
  EXPECT_TRUE(callback_ran);
}

}  // namespace
}  // namespace qsel::fd
