// Randomized validation of the Quorum Selection specification
// (Section IV-A) against the full stack: for many seeded random fault
// schedules (crashes, single-link omissions, link delays — all within the
// f budget), after faults stop and the network is calm the system must
// satisfy:
//
//   Termination — no further quorums are issued during a long quiet
//                 window;
//   Agreement   — all live correct processes report the same quorum;
//   No suspicion — no quorum member suspects another quorum member.
//
// This is the paper's specification executed as a property, not a
// hand-picked scenario.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "runtime/quorum_cluster.hpp"

namespace qsel::runtime {
namespace {

constexpr SimDuration kMs = 1'000'000;

struct Sweep {
  ProcessId n;
  int f;
  std::uint64_t seed;
};

class QuorumSpecSweep : public ::testing::TestWithParam<Sweep> {};

TEST_P(QuorumSpecSweep, TerminationAgreementNoSuspicion) {
  const auto [n, f, seed] = GetParam();
  QuorumClusterConfig config;
  config.n = n;
  config.f = f;
  config.seed = seed;
  config.network.base_latency = 1 * kMs;
  config.network.jitter = 200'000;
  config.heartbeat_period = 5 * kMs;
  config.fd.initial_timeout = 12 * kMs;
  QuorumCluster cluster(config);
  cluster.start();

  // Random fault schedule, at most f crashed processes, plus link-level
  // omissions and delays attributed to the already-faulty set.
  Rng rng(seed * 7919 + 13);
  ProcessSet faulty;
  SimTime t = 20 * kMs;
  const int fault_events = static_cast<int>(rng.between(1, 4));
  for (int i = 0; i < fault_events; ++i) {
    cluster.simulator().run_until(t);
    t += rng.between(20, 120) * kMs;
    // Pick (or reuse) a faulty process.
    ProcessId culprit;
    if (faulty.size() < f && rng.chance(0.7)) {
      do {
        culprit = static_cast<ProcessId>(rng.below(n));
      } while (faulty.contains(culprit));
      faulty.insert(culprit);
    } else if (!faulty.empty()) {
      culprit = faulty.min();
    } else {
      culprit = static_cast<ProcessId>(rng.below(n));
      faulty.insert(culprit);
    }
    switch (rng.below(3)) {
      case 0:
        cluster.network().crash(culprit);
        break;
      case 1: {
        // Omit on one random outgoing link.
        auto victim = static_cast<ProcessId>(rng.below(n));
        if (victim != culprit)
          cluster.network().set_link_enabled(culprit, victim, false);
        break;
      }
      default: {
        // Heavy timing failure on all outgoing links.
        for (ProcessId to = 0; to < n; ++to)
          if (to != culprit)
            cluster.network().set_link_extra_delay(culprit, to, 80 * kMs);
        break;
      }
    }
  }
  ASSERT_LE(faulty.size(), f);

  // Let the system stabilize, then observe a long quiet window.
  cluster.simulator().run_until(t + 3000 * kMs);
  const std::uint64_t issued = cluster.total_quorums_issued();
  const auto quorum = cluster.agreed_quorum();
  cluster.simulator().run_until(t + 6000 * kMs);

  // Termination.
  EXPECT_EQ(cluster.total_quorums_issued(), issued)
      << "quorums still being issued in the quiet window";
  // Agreement.
  ASSERT_TRUE(quorum.has_value()) << "correct processes disagree";
  EXPECT_EQ(cluster.agreed_quorum(), quorum);
  EXPECT_EQ(quorum->size(), static_cast<int>(n) - f);
  // No suspicion within the quorum.
  for (ProcessId id : cluster.alive()) {
    if (!quorum->contains(id)) continue;
    EXPECT_FALSE(cluster.process(id)
                     .failure_detector()
                     .suspected()
                     .intersects(*quorum))
        << "member " << id << " suspects inside quorum "
        << quorum->to_string();
  }
}

std::vector<Sweep> sweeps() {
  std::vector<Sweep> result;
  std::uint64_t seed = 1;
  for (const auto& [n, f] :
       std::vector<std::pair<ProcessId, int>>{{4, 1}, {5, 2}, {7, 2}, {10, 3}})
    for (int i = 0; i < 4; ++i) result.push_back(Sweep{n, f, seed++});
  return result;
}

INSTANTIATE_TEST_SUITE_P(RandomFaultSchedules, QuorumSpecSweep,
                         ::testing::ValuesIn(sweeps()),
                         [](const auto& sweep_info) {
                           return "n" + std::to_string(sweep_info.param.n) + "_f" +
                                  std::to_string(sweep_info.param.f) + "_seed" +
                                  std::to_string(sweep_info.param.seed);
                         });

}  // namespace
}  // namespace qsel::runtime
