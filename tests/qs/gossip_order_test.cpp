// Order-independence of the suspicion gossip (Section VI-A): whatever
// order the signed UPDATE messages are delivered and forwarded in, all
// correct processes converge to the same matrix, epoch and quorum —
// the eventually-consistent-data-structure argument, fuzzed.
#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "common/rng.hpp"
#include "qs/quorum_selector.hpp"

namespace qsel::qs {
namespace {

struct ShuffledNet {
  ProcessId n;
  crypto::KeyRegistry keys;
  std::vector<crypto::Signer> signers;
  std::vector<std::unique_ptr<QuorumSelector>> selectors;
  /// Pending deliveries: (destination, message).
  std::deque<std::pair<ProcessId, std::shared_ptr<const suspect::UpdateMessage>>>
      pending;
  Rng rng;

  ShuffledNet(ProcessId n_in, int f, std::uint64_t seed)
      : n(n_in), keys(n_in, 1), rng(seed) {
    for (ProcessId i = 0; i < n; ++i) signers.emplace_back(keys, i);
    for (ProcessId i = 0; i < n; ++i) {
      selectors.push_back(std::make_unique<QuorumSelector>(
          signers[i], QuorumSelectorConfig{n, f},
          QuorumSelector::Hooks{[](ProcessSet) {},
                                [this, i](sim::PayloadPtr m) {
                                  auto update = std::dynamic_pointer_cast<
                                      const suspect::UpdateMessage>(m);
                                  ASSERT_NE(update, nullptr);
                                  for (ProcessId to = 0; to < n; ++to)
                                    if (to != i) pending.emplace_back(to, update);
                                },
                                /*persist=*/{}}));
    }
  }

  /// Delivers pending messages in random order until quiescence.
  void drain_shuffled(std::size_t cap = 1u << 18) {
    std::size_t delivered = 0;
    while (!pending.empty() && delivered < cap) {
      const std::size_t pick = rng.below(pending.size());
      std::swap(pending[pick], pending.back());
      auto [to, msg] = pending.back();
      pending.pop_back();
      selectors[to]->on_update(msg);
      ++delivered;
    }
  }
};

TEST(GossipOrderTest, RandomDeliveryOrdersConverge) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const ProcessId n = 7;
    const int f = 2;
    ShuffledNet net(n, f, seed);
    // Random accurate suspicions: correct processes suspect members of a
    // fixed faulty set only (accuracy), so no epoch change is needed and
    // the final quorum is a pure function of the suspicion multiset.
    Rng scenario(seed * 31 + 7);
    const ProcessSet faulty{1, 4};
    for (int event = 0; event < 6; ++event) {
      const auto reporter = static_cast<ProcessId>(scenario.below(n));
      if (faulty.contains(reporter)) continue;
      ProcessSet suspects;
      for (ProcessId s : faulty)
        if (scenario.chance(0.6)) suspects.insert(s);
      net.selectors[reporter]->on_suspected(suspects);
      if (scenario.chance(0.5)) net.drain_shuffled(scenario.below(40));
    }
    net.drain_shuffled();
    ASSERT_TRUE(net.pending.empty()) << "gossip did not quiesce";
    // All correct processes agree on matrix, epoch and quorum.
    const auto& reference = *net.selectors[0];
    for (ProcessId i = 1; i < n; ++i) {
      if (faulty.contains(i)) continue;
      EXPECT_EQ(net.selectors[i]->matrix(), reference.matrix())
          << "seed " << seed << " process " << i;
      EXPECT_EQ(net.selectors[i]->epoch(), reference.epoch());
      EXPECT_EQ(net.selectors[i]->quorum(), reference.quorum());
    }
  }
}

TEST(GossipOrderTest, TwoIdenticalScenariosDifferentOrdersSameQuorum) {
  auto run = [](std::uint64_t shuffle_seed) {
    ShuffledNet net(5, 2, shuffle_seed);
    net.selectors[0]->on_suspected(ProcessSet{3});
    net.drain_shuffled(10);  // partial delivery
    net.selectors[2]->on_suspected(ProcessSet{3, 4});
    net.drain_shuffled();
    return net.selectors[1]->quorum();
  };
  const ProcessSet a = run(111);
  const ProcessSet b = run(999);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace qsel::qs
