// The memo + hint machinery in QuorumSelector is an optimization with an
// exact spec: the quorum it reports must always equal the from-scratch
// lexicographically-first independent set of size q in the suspect graph
// the matrix implies at the current epoch. These properties drive
// randomized stamp sequences — including epoch bumps and graph shapes
// that revisit earlier adjacency images — and check that equality after
// every single event, plus the bookkeeping the optimization promises
// (no solver run when the graph did not change).
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "graph/independent_set.hpp"
#include "qs/quorum_selector.hpp"
#include "suspect/update_message.hpp"

namespace qsel::qs {
namespace {

struct SelectorFixture {
  crypto::KeyRegistry keys;
  crypto::Signer signer;
  std::vector<sim::PayloadPtr> broadcasts;
  QuorumSelector selector;

  SelectorFixture(ProcessId n, int f, ProcessId self = 0,
                  suspect::GossipMode mode = suspect::GossipMode::kFullRow)
      : keys(n, 3),
        signer(keys, self),
        selector(signer, QuorumSelectorConfig{n, f, mode},
                 QuorumSelector::Hooks{
                     [](ProcessSet) {},
                     [this](sim::PayloadPtr m) { broadcasts.push_back(m); },
                     /*persist=*/{}}) {}
};

/// From-scratch oracle: rebuild the suspect graph from the matrix at the
/// selector's current epoch and solve with no memo, no hint.
ProcessSet oracle_quorum(const QuorumSelector& selector, int q) {
  const auto graph =
      selector.matrix().build_suspect_graph(selector.epoch());
  const auto solved = graph::first_independent_set(graph, q);
  // Algorithm 1 always lands on an epoch where a quorum exists (advancing
  // drops edges until one does), so the oracle must find one too.
  EXPECT_TRUE(solved.has_value());
  return solved.value_or(ProcessSet{});
}

TEST(IncrementalSolverPropertyTest, AgreesWithFromScratchOnRandomSequences) {
  constexpr ProcessId kN = 8;
  constexpr int kF = 2;
  const int q = static_cast<int>(kN) - kF;

  for (std::uint64_t seed : {3u, 17u, 88u, 301u, 9000u}) {
    std::mt19937_64 rng(seed);
    SelectorFixture fx(kN, kF);
    // Peer signers so received UPDATEs carry valid origin signatures.
    std::vector<std::unique_ptr<crypto::Signer>> peers;
    for (ProcessId id = 1; id < kN; ++id)
      peers.push_back(std::make_unique<crypto::Signer>(fx.keys, id));

    for (int step = 0; step < 120; ++step) {
      const int kind = static_cast<int>(rng() % 3);
      if (kind == 0) {
        // Local suspicion burst (stamps own row, may advance the epoch).
        ProcessSet suspects;
        const ProcessId victim = static_cast<ProcessId>(rng() % kN);
        if (victim != 0) suspects.insert(victim);
        if (!suspects.empty()) fx.selector.on_suspected(suspects);
      } else {
        // Remote row: a peer suspecting a random subset at a random stamp
        // no further than a couple of epochs ahead (far-future stamps are
        // the next_epoch_candidate test's job, not this one's).
        auto& peer = *peers[rng() % peers.size()];
        std::vector<Epoch> row(kN, 0);
        const Epoch stamp = fx.selector.epoch() + rng() % 2;
        for (ProcessId col = 0; col < kN; ++col)
          if (col != peer.self() && rng() % 3 == 0) row[col] = stamp;
        fx.selector.on_update(suspect::UpdateMessage::make(peer, row));
      }
      ASSERT_EQ(fx.selector.quorum(), oracle_quorum(fx.selector, q))
          << "divergence at seed " << seed << " step " << step
          << " epoch " << fx.selector.epoch();
    }
    // The optimization must have actually engaged on a 120-event run:
    // most merges re-see the same graph or add no edge.
    const auto& core = fx.selector.core();
    EXPECT_GT(fx.selector.cache_hits() + core.solver_calls_skipped(), 0u)
        << "memo/incremental path never used at seed " << seed;
  }
}

TEST(IncrementalSolverPropertyTest, MergeWithoutNewEdgeSkipsTheSolver) {
  constexpr ProcessId kN = 6;
  SelectorFixture fx(kN, 1);
  const crypto::Signer peer(fx.keys, 1);

  // Edge (1,3) enters the graph: solver must run.
  std::vector<Epoch> row(kN, 0);
  row[3] = fx.selector.epoch();
  fx.selector.on_update(suspect::UpdateMessage::make(peer, row));
  const std::uint64_t runs_after_edge = fx.selector.solver_runs();
  const std::uint64_t skipped_before = fx.selector.core().solver_calls_skipped();

  // A higher stamp on the SAME pair changes the matrix (cell increases)
  // but not the graph at this epoch — the solver must not run again.
  row[3] = fx.selector.epoch() + 1;
  fx.selector.on_update(suspect::UpdateMessage::make(peer, row));
  EXPECT_EQ(fx.selector.solver_runs(), runs_after_edge);
  EXPECT_GT(fx.selector.core().solver_calls_skipped(), skipped_before);
}

TEST(IncrementalSolverPropertyTest, EpochBumpInvalidatesTheMemo) {
  constexpr ProcessId kN = 6;
  SelectorFixture fx(kN, 1);
  const crypto::Signer p1(fx.keys, 1);
  const crypto::Signer p2(fx.keys, 2);

  // Two suspicions between distinct pairs force the quorum off default,
  // then enough mutual suspicion forces an epoch advance.
  std::vector<Epoch> row(kN, 0);
  row[2] = 1;
  fx.selector.on_update(suspect::UpdateMessage::make(p1, row));
  const Epoch before = fx.selector.epoch();
  ASSERT_EQ(fx.selector.quorum(),
            oracle_quorum(fx.selector, static_cast<int>(kN) - 1));

  // Saturate: everyone suspects everyone (via two rows plus local bursts)
  // until no 5-independent-set exists at the epoch and it must advance.
  std::vector<Epoch> all(kN, 1);
  all[1] = 0;
  fx.selector.on_update(suspect::UpdateMessage::make(p1, all));
  std::vector<Epoch> all2(kN, 1);
  all2[2] = 0;
  fx.selector.on_update(suspect::UpdateMessage::make(p2, all2));
  EXPECT_GT(fx.selector.epoch(), before);
  EXPECT_EQ(fx.selector.quorum(),
            oracle_quorum(fx.selector, static_cast<int>(kN) - 1));
}

TEST(IncrementalSolverPropertyTest, GrowingGraphNeverServesStaleMemo) {
  // The memo key stores the exact adjacency image, so a graph that grew
  // since the cached solve can never alias it ("signature collisions" are
  // impossible by construction). Check the answer tracks the oracle
  // across ∅ → {(1,2)} → {(1,2),(3,4)}, the last of which forces an
  // epoch advance (two disjoint edges leave no 5-independent-set in K6's
  // complement) — the memo must be bypassed or invalidated at each step.
  constexpr ProcessId kN = 6;
  SelectorFixture fx(kN, 1);
  const crypto::Signer p1(fx.keys, 1);
  const crypto::Signer p3(fx.keys, 3);

  std::vector<Epoch> row1(kN, 0);
  row1[2] = 1;  // edge (1,2)
  fx.selector.on_update(suspect::UpdateMessage::make(p1, row1));
  const ProcessSet q1 = fx.selector.quorum();
  EXPECT_EQ(q1, oracle_quorum(fx.selector, static_cast<int>(kN) - 1));

  const Epoch before = fx.selector.epoch();
  std::vector<Epoch> row3(kN, 0);
  row3[4] = 1;  // edge (3,4)
  fx.selector.on_update(suspect::UpdateMessage::make(p3, row3));
  const ProcessSet q2 = fx.selector.quorum();
  EXPECT_GT(fx.selector.epoch(), before);
  EXPECT_EQ(q2, oracle_quorum(fx.selector, static_cast<int>(kN) - 1));
}

TEST(IncrementalSolverPropertyTest, HintNeverChangesTheAnswer) {
  // Direct solver-level check: for random graphs, first_independent_set
  // with an arbitrary (possibly wrong) hint equals the hint-free answer.
  std::mt19937_64 rng(77);
  for (int round = 0; round < 200; ++round) {
    const ProcessId n = static_cast<ProcessId>(5 + rng() % 6);
    graph::SimpleGraph g(n);
    for (ProcessId a = 0; a < n; ++a)
      for (ProcessId b = a + 1; b < n; ++b)
        if (rng() % 4 == 0) g.add_edge(a, b);
    const int q = 2 + static_cast<int>(rng() % (n - 2));
    ProcessSet hint;
    for (ProcessId v = 0; v < n; ++v)
      if (rng() % 2 == 0) hint.insert(v);
    const auto plain = graph::first_independent_set(g, q);
    const auto hinted = graph::first_independent_set(g, q, hint);
    ASSERT_EQ(plain, hinted) << "round " << round;
  }
}

}  // namespace
}  // namespace qsel::qs
