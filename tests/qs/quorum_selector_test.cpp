#include "qs/quorum_selector.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "graph/independent_set.hpp"

namespace qsel::qs {
namespace {

/// A little synchronous "network" of selectors: broadcasts append to a
/// queue that the test drains, delivering every message to every other
/// selector. This exercises Algorithm 1's message flow without the
/// simulator.
struct SelectorNet {
  ProcessId n;
  int f;
  crypto::KeyRegistry keys;
  std::vector<crypto::Signer> signers;
  std::vector<std::unique_ptr<QuorumSelector>> selectors;
  std::deque<std::pair<ProcessId, sim::PayloadPtr>> wire;  // (sender, msg)
  std::vector<std::vector<ProcessSet>> issued;

  SelectorNet(ProcessId n_in, int f_in) : n(n_in), f(f_in), keys(n_in, 1) {
    issued.resize(n);
    for (ProcessId i = 0; i < n; ++i) signers.emplace_back(keys, i);
    for (ProcessId i = 0; i < n; ++i) {
      selectors.push_back(std::make_unique<QuorumSelector>(
          signers[i], QuorumSelectorConfig{n, f},
          QuorumSelector::Hooks{
              [this, i](ProcessSet q) { issued[i].push_back(q); },
              [this, i](sim::PayloadPtr m) { wire.emplace_back(i, m); },
              /*persist=*/{}}));
    }
  }

  /// Delivers queued broadcasts (including forwards) until quiescence or
  /// the step cap. The cap matters for scenarios where two processes
  /// permanently suspect each other — the paper's Termination property
  /// only holds once the failure detector is accurate, and such gossip
  /// never quiesces (each epoch advance re-stamps and re-broadcasts).
  void drain(std::size_t max_messages = 1u << 20) {
    std::size_t delivered = 0;
    while (!wire.empty() && delivered < max_messages) {
      auto [sender, payload] = wire.front();
      wire.pop_front();
      auto update =
          std::dynamic_pointer_cast<const suspect::UpdateMessage>(payload);
      ASSERT_NE(update, nullptr);
      for (ProcessId i = 0; i < n; ++i)
        if (i != sender) selectors[i]->on_update(update);
      ++delivered;
    }
  }

  bool all_agree_on(ProcessSet expected) const {
    for (const auto& s : selectors)
      if (s->quorum() != expected) return false;
    return true;
  }
};

TEST(QuorumSelectorTest, InitialQuorumIsDefaultPrefix) {
  SelectorNet net(4, 1);
  EXPECT_EQ(net.selectors[0]->quorum(), (ProcessSet{0, 1, 2}));
  EXPECT_EQ(net.selectors[0]->epoch(), 1u);
  EXPECT_EQ(net.selectors[0]->quorums_issued(), 0u);
}

TEST(QuorumSelectorTest, ConfigValidation) {
  const crypto::KeyRegistry keys(4, 1);
  const crypto::Signer signer(keys, 0);
  const QuorumSelector::Hooks hooks{[](ProcessSet) {},
                                    [](sim::PayloadPtr) {},
                                    /*persist=*/{}};
  EXPECT_THROW(QuorumSelector(signer, QuorumSelectorConfig{4, 0}, hooks),
               std::invalid_argument);
  EXPECT_THROW(QuorumSelector(signer, QuorumSelectorConfig{4, 2}, hooks),
               std::invalid_argument);  // n - f > f violated
}

// The "no suspicion" reactivity: one single suspicion inside the quorum
// forces a new quorum (Section IV-A).
TEST(QuorumSelectorTest, SingleSuspicionChangesQuorum) {
  SelectorNet net(4, 1);
  net.selectors[0]->on_suspected(ProcessSet{1});
  ASSERT_EQ(net.issued[0].size(), 1u);
  // First independent set of size 3 avoiding edge (0,1): {0, 2, 3}.
  EXPECT_EQ(net.issued[0][0], (ProcessSet{0, 2, 3}));
  net.drain();
  EXPECT_TRUE(net.all_agree_on(ProcessSet{0, 2, 3}));
}

TEST(QuorumSelectorTest, SuspicionOutsideQuorumIsInvisible) {
  SelectorNet net(4, 1);
  net.selectors[0]->on_suspected(ProcessSet{3});  // 3 not in {0,1,2}
  net.drain();
  EXPECT_TRUE(net.all_agree_on(ProcessSet{0, 1, 2}));
  EXPECT_EQ(net.selectors[0]->quorums_issued(), 0u);
}

TEST(QuorumSelectorTest, CrashSuspectedByAllIsExcluded) {
  SelectorNet net(5, 2);
  // Everyone suspects process 1 (a benign crash observed by all).
  for (ProcessId i : ProcessSet{0, 2, 3, 4})
    net.selectors[i]->on_suspected(ProcessSet{1});
  net.drain();
  // Quorum is the first independent set of size 3 in the star around 1.
  EXPECT_TRUE(net.all_agree_on(ProcessSet{0, 2, 3}));
  for (ProcessId i : ProcessSet{0, 2, 3, 4})
    EXPECT_FALSE(net.selectors[i]->quorum().contains(1));
}

// Agreement: after drain (all updates delivered) every correct process
// reports the same quorum, whatever the suspicion pattern.
TEST(QuorumSelectorTest, AgreementAfterPropagation) {
  SelectorNet net(7, 2);
  net.selectors[0]->on_suspected(ProcessSet{3});
  net.selectors[4]->on_suspected(ProcessSet{2, 5});
  net.selectors[6]->on_suspected(ProcessSet{0});
  net.drain();
  const ProcessSet q0 = net.selectors[0]->quorum();
  EXPECT_TRUE(net.all_agree_on(q0));
  // The agreed quorum is an independent set of the shared suspect graph.
  const auto g = net.selectors[0]->core().current_graph();
  EXPECT_TRUE(graph::is_independent_set(g, q0));
  EXPECT_EQ(q0.size(), 5);
}

// Inconsistent suspicions among correct processes (mutual suspicion) force
// an epoch change rather than a deadlock.
TEST(QuorumSelectorTest, MutualSuspicionsAdvanceEpoch) {
  SelectorNet net(4, 1);
  // With q = 3 and 4 processes, suspicions among {0,1},{2,3} leave no
  // independent set of size 3: epoch must advance.
  net.selectors[0]->on_suspected(ProcessSet{1});
  net.selectors[2]->on_suspected(ProcessSet{3});
  // Both processes *keep* suspecting (their FD never cancels), which
  // violates the accuracy requirement — gossip here never quiesces, so
  // deliver a bounded number of messages.
  net.drain(200);
  for (auto& s : net.selectors) EXPECT_GE(s->epoch(), 2u);
  // Liveness: despite the churn every process still holds a full-size
  // quorum at all times.
  for (auto& s : net.selectors) EXPECT_EQ(s->quorum().size(), 3);
}

TEST(QuorumSelectorTest, LexicographicTieBreakIsStable) {
  SelectorNet a(6, 2);
  SelectorNet b(6, 2);
  // Same suspicions in different arrival order.
  a.selectors[0]->on_suspected(ProcessSet{1});
  a.selectors[2]->on_suspected(ProcessSet{3});
  a.drain();
  b.selectors[2]->on_suspected(ProcessSet{3});
  b.selectors[0]->on_suspected(ProcessSet{1});
  b.drain();
  EXPECT_EQ(a.selectors[5]->quorum(), b.selectors[5]->quorum());
}

TEST(QuorumSelectorTest, HistoryRecordsEpochs) {
  SelectorNet net(4, 1);
  net.selectors[0]->on_suspected(ProcessSet{1});
  net.drain();
  const auto& history = net.selectors[0]->history();
  ASSERT_GE(history.size(), 1u);
  EXPECT_EQ(history[0].epoch, 1u);
  EXPECT_EQ(history[0].quorum, (ProcessSet{0, 2, 3}));
}

// A Byzantine process stamping far-future epochs only excludes itself.
TEST(QuorumSelectorTest, FarFutureStampsOnlyHurtTheirAuthor) {
  SelectorNet net(4, 1);
  crypto::Signer byzantine(net.keys, 3);
  std::vector<Epoch> row{1000000, 1000000, 1000000, 0};  // suspect everyone
  const auto update = suspect::UpdateMessage::make(byzantine, row);
  for (ProcessId i = 0; i < 3; ++i) net.selectors[i]->on_update(update);
  net.drain();
  const ProcessSet q = net.selectors[0]->quorum();
  EXPECT_TRUE(net.all_agree_on(q));
  EXPECT_FALSE(q.contains(3));
  EXPECT_EQ(q, (ProcessSet{0, 1, 2}));
  // No epoch explosion: epochs stay minimal because the quorum exists.
  EXPECT_EQ(net.selectors[0]->epoch(), 1u);
}

}  // namespace
}  // namespace qsel::qs
