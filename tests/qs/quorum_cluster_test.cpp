#include "runtime/quorum_cluster.hpp"

#include <gtest/gtest.h>

namespace qsel::runtime {
namespace {

QuorumClusterConfig small_config(ProcessId n, int f, std::uint64_t seed = 1) {
  QuorumClusterConfig config;
  config.n = n;
  config.f = f;
  config.seed = seed;
  config.network.base_latency = 1'000'000;  // 1 ms
  config.network.jitter = 200'000;
  config.heartbeat_period = 5'000'000;  // 5 ms
  config.fd.initial_timeout = 12'000'000;  // 12 ms > period + 2 rounds
  return config;
}

constexpr SimDuration kMs = 1'000'000;

TEST(QuorumClusterTest, FaultFreeRunKeepsDefaultQuorum) {
  QuorumCluster cluster(small_config(4, 1));
  cluster.start();
  cluster.simulator().run_until(500 * kMs);
  const auto quorum = cluster.agreed_quorum();
  ASSERT_TRUE(quorum.has_value());
  EXPECT_EQ(*quorum, (ProcessSet{0, 1, 2}));
  EXPECT_EQ(cluster.total_quorums_issued(), 0u);
  // Eventual strong accuracy: nobody suspects anybody.
  for (ProcessId id : cluster.correct())
    EXPECT_TRUE(cluster.process(id).failure_detector().suspected().empty());
}

TEST(QuorumClusterTest, CrashedQuorumMemberIsReplaced) {
  QuorumCluster cluster(small_config(4, 1));
  cluster.start();
  cluster.simulator().run_until(50 * kMs);
  cluster.network().crash(1);
  cluster.simulator().run_until(500 * kMs);
  const auto quorum = cluster.agreed_quorum();
  ASSERT_TRUE(quorum.has_value());
  EXPECT_FALSE(quorum->contains(1));
  EXPECT_EQ(quorum->size(), 3);
}

TEST(QuorumClusterTest, CrashOutsideQuorumCausesNoChange) {
  QuorumCluster cluster(small_config(4, 1));
  cluster.start();
  cluster.simulator().run_until(50 * kMs);
  cluster.network().crash(3);  // not in default quorum {0,1,2}
  cluster.simulator().run_until(500 * kMs);
  EXPECT_EQ(cluster.agreed_quorum(), (ProcessSet{0, 1, 2}));
  // Omissions from processes outside the active quorum have no effect on
  // the quorum (Section I) — the crash is still *suspected*, but since 3
  // was never in the quorum no quorum change is issued by the survivors
  // that matter... verify via issue counts of quorum members:
  EXPECT_EQ(cluster.process(0).selector().quorums_issued(), 0u);
}

// Omission failures on an individual link (Section I: "even if they only
// affect individual links") are detected and resolved.
TEST(QuorumClusterTest, SingleLinkOmissionExcludesOneEndpoint) {
  QuorumCluster cluster(small_config(4, 1));
  cluster.start();
  cluster.simulator().run_until(50 * kMs);
  // Process 1 omits all messages to process 0 only; 1's messages to 2, 3
  // still flow.
  cluster.network().set_link_enabled(1, 0, false);
  cluster.simulator().run_until(500 * kMs);
  const auto quorum = cluster.agreed_quorum();
  ASSERT_TRUE(quorum.has_value());
  // The suspicion edge (0,1) forces the quorum to drop 0 or 1; the
  // lexicographically first independent set keeps 0.
  EXPECT_EQ(*quorum, (ProcessSet{0, 2, 3}));
}

TEST(QuorumClusterTest, TwoCrashesWithFTwo) {
  QuorumCluster cluster(small_config(7, 2));
  cluster.start();
  cluster.simulator().run_until(50 * kMs);
  cluster.network().crash(0);
  cluster.simulator().run_until(150 * kMs);
  cluster.network().crash(4);
  cluster.simulator().run_until(700 * kMs);
  const auto quorum = cluster.agreed_quorum();
  ASSERT_TRUE(quorum.has_value());
  EXPECT_FALSE(quorum->contains(0));
  EXPECT_FALSE(quorum->contains(4));
  EXPECT_EQ(*quorum, (ProcessSet{1, 2, 3, 5, 6})) << quorum->to_string();
}

// Termination + No Suspicion: after the last failure the system
// stabilizes — no further quorums are issued and no quorum member
// suspects another member.
TEST(QuorumClusterTest, StabilizesAfterFailuresStop) {
  QuorumCluster cluster(small_config(7, 2, 33));
  cluster.start();
  cluster.simulator().run_until(50 * kMs);
  cluster.network().crash(2);
  cluster.simulator().run_until(600 * kMs);
  const std::uint64_t issued_at_600 = cluster.total_quorums_issued();
  const auto quorum_at_600 = cluster.agreed_quorum();
  ASSERT_TRUE(quorum_at_600.has_value());
  cluster.simulator().run_until(2000 * kMs);
  EXPECT_EQ(cluster.total_quorums_issued(), issued_at_600);
  EXPECT_EQ(cluster.agreed_quorum(), quorum_at_600);
  // No suspicion within the quorum:
  for (ProcessId id : cluster.correct()) {
    if (!quorum_at_600->contains(id)) continue;
    EXPECT_FALSE(cluster.process(id)
                     .failure_detector()
                     .suspected()
                     .intersects(*quorum_at_600))
        << "quorum member " << id << " suspects inside the quorum";
  }
}

// Timing failures: a link so slow that expectations fire repeatedly. The
// slow process gets excluded from the quorum even though its messages all
// (eventually) arrive.
TEST(QuorumClusterTest, TimingFailureOnLinkExcludesProcess) {
  auto config = small_config(4, 1);
  config.fd.adaptive = false;  // keep the timeout tight to see suspicions
  QuorumCluster cluster(config);
  cluster.start();
  cluster.simulator().run_until(50 * kMs);
  for (ProcessId to = 0; to < 4; ++to)
    if (to != 2) cluster.network().set_link_extra_delay(2, to, 100 * kMs);
  cluster.simulator().run_until(500 * kMs);
  const auto quorum = cluster.agreed_quorum();
  ASSERT_TRUE(quorum.has_value());
  EXPECT_FALSE(quorum->contains(2));
}

// Eventual synchrony: heavy pre-GST delays cause false suspicions and
// quorum churn, but after GST adaptive timeouts restore accuracy and the
// cluster re-stabilizes (Termination + Agreement).
TEST(QuorumClusterTest, RecoversAfterGst) {
  auto config = small_config(5, 2, 7);
  config.network.pre_gst_extra = 60 * kMs;  // way beyond the timeout
  config.network.gst = 300 * kMs;
  QuorumCluster cluster(config);
  cluster.start();
  cluster.simulator().run_until(2500 * kMs);
  const auto quorum = cluster.agreed_quorum();
  ASSERT_TRUE(quorum.has_value());
  EXPECT_EQ(quorum->size(), 3);
  const std::uint64_t issued = cluster.total_quorums_issued();
  cluster.simulator().run_until(4000 * kMs);
  EXPECT_EQ(cluster.total_quorums_issued(), issued) << "still churning";
  for (ProcessId id : cluster.correct()) {
    if (quorum->contains(id)) {
      EXPECT_FALSE(cluster.process(id)
                       .failure_detector()
                       .suspected()
                       .intersects(*quorum));
    }
  }
}

// Crash-recovery: restart() rebuilds the process over its NodeStore, so
// the rejoiner resumes at (at least) its persisted epoch instead of
// re-voting its way through history, and the cluster re-stabilizes with
// everyone back in agreement.
TEST(QuorumClusterTest, RestartedNodeRecoversEpochAndRejoins) {
  QuorumCluster cluster(small_config(4, 1));
  cluster.start();
  cluster.simulator().run_until(50 * kMs);
  const Epoch epoch_before = cluster.process(1).selector().epoch();
  cluster.network().crash(1);
  cluster.simulator().run_until(500 * kMs);
  const auto quorum_without = cluster.agreed_quorum();
  ASSERT_TRUE(quorum_without.has_value());
  EXPECT_FALSE(quorum_without->contains(1));
  const Epoch survivor_epoch = cluster.process(0).selector().epoch();

  cluster.restart(1);
  // Straight out of recovery, before any message is delivered: the
  // rejoiner holds its durable epoch, not epoch 1.
  EXPECT_GE(cluster.process(1).selector().epoch(), epoch_before);

  cluster.simulator().run_until(2000 * kMs);
  EXPECT_TRUE(cluster.alive().contains(1));
  ASSERT_TRUE(cluster.agreed_quorum().has_value());
  // Epochs only ever move forward through the whole episode.
  for (ProcessId id : cluster.correct())
    EXPECT_GE(cluster.process(id).selector().epoch(), survivor_epoch);
}

// Double crash-restart of the same node: recovery must be idempotent —
// the second restart recovers the join of everything ever persisted, and
// agreement holds after each rejoin.
TEST(QuorumClusterTest, DoubleCrashRestartIsIdempotent) {
  QuorumCluster cluster(small_config(5, 1, 3));
  cluster.start();
  cluster.simulator().run_until(50 * kMs);
  Epoch last_epoch = 0;
  for (std::uint64_t cycle = 0; cycle < 2; ++cycle) {
    cluster.network().crash(2);
    cluster.simulator().run_until((500 + cycle * 1000) * kMs);
    cluster.restart(2);
    const Epoch recovered = cluster.process(2).selector().epoch();
    EXPECT_GE(recovered, last_epoch) << "cycle " << cycle;
    last_epoch = recovered;
    cluster.simulator().run_until((1500 + cycle * 1000) * kMs);
    ASSERT_TRUE(cluster.agreed_quorum().has_value()) << "cycle " << cycle;
  }
}

TEST(QuorumClusterTest, RestartScheduleIsDeterministic) {
  auto run = [](std::uint64_t seed) {
    QuorumCluster cluster(small_config(5, 2, seed));
    cluster.start();
    cluster.simulator().run_until(40 * kMs);
    cluster.network().crash(3);
    cluster.simulator().run_until(400 * kMs);
    cluster.restart(3);
    cluster.simulator().run_until(1500 * kMs);
    return std::make_tuple(cluster.agreed_quorum(),
                           cluster.total_quorums_issued(),
                           cluster.network().stats().total_messages());
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_EQ(run(29), run(29));
}

TEST(QuorumClusterTest, DeterministicAcrossIdenticalRuns) {
  auto run = [](std::uint64_t seed) {
    QuorumCluster cluster(small_config(5, 2, seed));
    cluster.start();
    cluster.simulator().run_until(30 * kMs);
    cluster.network().crash(0);
    cluster.simulator().run_until(400 * kMs);
    return std::make_tuple(cluster.agreed_quorum(),
                           cluster.total_quorums_issued(),
                           cluster.network().stats().total_messages());
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_EQ(run(42), run(42));
}

}  // namespace
}  // namespace qsel::runtime
