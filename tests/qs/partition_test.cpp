// Network partitions against Quorum Selection: during a partition the
// sides suspect each other (accuracy is violated — that is expected and
// allowed before "eventually"); after healing, the epoch mechanism clears
// the stale mutual suspicions and the cluster re-converges to a single
// agreed quorum with no suspicions inside it.
#include <gtest/gtest.h>

#include "runtime/quorum_cluster.hpp"

namespace qsel::runtime {
namespace {

constexpr SimDuration kMs = 1'000'000;

QuorumClusterConfig config_for(ProcessId n, int f, std::uint64_t seed) {
  QuorumClusterConfig config;
  config.n = n;
  config.f = f;
  config.seed = seed;
  config.network.base_latency = 1 * kMs;
  config.network.jitter = 200'000;
  config.heartbeat_period = 5 * kMs;
  config.fd.initial_timeout = 12 * kMs;
  return config;
}

TEST(PartitionTest, HealedPartitionReconverges) {
  QuorumCluster cluster(config_for(7, 2, 31));
  cluster.start();
  cluster.simulator().run_until(100 * kMs);

  cluster.network().partition(ProcessSet{0, 1, 2, 3}, ProcessSet{4, 5, 6});
  cluster.simulator().run_until(400 * kMs);
  // Cross-partition suspicions exist during the cut.
  bool cross_suspicion = false;
  for (ProcessId id : ProcessSet{0, 1, 2, 3})
    cross_suspicion |= cluster.process(id)
                           .failure_detector()
                           .suspected()
                           .intersects(ProcessSet{4, 5, 6});
  EXPECT_TRUE(cross_suspicion);

  cluster.network().heal_partition();
  cluster.simulator().run_until(5000 * kMs);

  const auto quorum = cluster.agreed_quorum();
  ASSERT_TRUE(quorum.has_value()) << "no re-convergence after healing";
  EXPECT_EQ(quorum->size(), 5);
  for (ProcessId id : cluster.correct()) {
    if (!quorum->contains(id)) continue;
    EXPECT_FALSE(cluster.process(id)
                     .failure_detector()
                     .suspected()
                     .intersects(*quorum))
        << "residual suspicion inside the healed quorum at p" << id;
  }
  // The stale partition-era suspicions forced at least one epoch advance.
  EXPECT_GT(cluster.process(0).selector().epoch(), 1u);
}

TEST(PartitionTest, StableAfterReconvergence) {
  QuorumCluster cluster(config_for(5, 2, 33));
  cluster.start();
  cluster.simulator().run_until(100 * kMs);
  cluster.network().partition(ProcessSet{0, 1, 2}, ProcessSet{3, 4});
  cluster.simulator().run_until(300 * kMs);
  cluster.network().heal_partition();
  cluster.simulator().run_until(4000 * kMs);
  const std::uint64_t issued = cluster.total_quorums_issued();
  const auto quorum = cluster.agreed_quorum();
  ASSERT_TRUE(quorum.has_value());
  cluster.simulator().run_until(8000 * kMs);
  EXPECT_EQ(cluster.total_quorums_issued(), issued) << "still churning";
  EXPECT_EQ(cluster.agreed_quorum(), quorum);
}

}  // namespace
}  // namespace qsel::runtime
