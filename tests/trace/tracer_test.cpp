#include "trace/tracer.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "trace/jsonl.hpp"

namespace qsel::trace {
namespace {

Event sample_event(std::uint64_t i) {
  Event e;
  e.time = i * 100;
  e.type = EventType::kSend;
  e.actor = static_cast<ProcessId>(i % 4);
  e.peer = static_cast<ProcessId>((i + 1) % 4);
  e.arg0 = i;
  e.arg1 = 52;
  e.tag = "test.payload";
  return e;
}

TEST(TracerTest, DigestIsChainedAndOrderSensitive) {
  Tracer a;
  Tracer b;
  EXPECT_EQ(a.digest(), b.digest());  // both at the zero digest

  a.send(0, 1, "x", 100, 10);
  EXPECT_NE(a.digest(), b.digest());

  b.send(0, 1, "x", 100, 10);
  EXPECT_EQ(a.digest(), b.digest());

  // Same two events, opposite order: digests must differ.
  Tracer c;
  Tracer d;
  c.send(0, 1, "x", 100, 10);
  c.deliver(1, 0, "x", 10);
  d.deliver(1, 0, "x", 10);
  d.send(0, 1, "x", 100, 10);
  EXPECT_NE(c.digest(), d.digest());

  // digest_of over the journal reproduces the running digest.
  EXPECT_EQ(digest_of(c.events()), c.digest());
}

TEST(TracerTest, EveryFieldFeedsTheDigest) {
  const Event base = sample_event(1);
  for (int field = 0; field < 6; ++field) {
    Event changed = base;
    switch (field) {
      case 0: changed.time += 1; break;
      case 1: changed.type = EventType::kDeliver; break;
      case 2: changed.actor += 1; break;
      case 3: changed.peer += 1; break;
      case 4: changed.arg0 += 1; break;
      case 5: changed.tag = "other"; break;
    }
    const Event events_a[] = {base};
    const Event events_b[] = {changed};
    EXPECT_NE(digest_of(events_a), digest_of(events_b))
        << "field " << field << " not covered by the digest";
  }
}

TEST(TracerTest, RingEvictsOldestButDigestCoversEverything) {
  TracerConfig config;
  config.ring_capacity = 4;
  Tracer tracer(config);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const Event e = sample_event(i);
    tracer.record(e.type, e.actor, e.peer, e.arg0, e.arg1, e.tag);
  }
  EXPECT_EQ(tracer.events_recorded(), 10u);
  EXPECT_EQ(tracer.events_evicted(), 6u);
  EXPECT_EQ(tracer.first_retained_index(), 6u);

  const std::vector<Event> retained = tracer.events();
  ASSERT_EQ(retained.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_EQ(retained[i].arg0, 6 + i) << "oldest-first order violated";

  // The digest still covers all ten events, not just the retained four.
  std::vector<Event> all;
  Tracer unbounded(TracerConfig{true, 0, ""});
  for (std::uint64_t i = 0; i < 10; ++i) {
    const Event e = sample_event(i);
    unbounded.record(e.type, e.actor, e.peer, e.arg0, e.arg1, e.tag);
  }
  EXPECT_EQ(tracer.digest(), unbounded.digest());
  EXPECT_NE(tracer.digest(), digest_of(retained));
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  TracerConfig config;
  config.enabled = false;
  Tracer tracer(config);
  tracer.send(0, 1, "x", 100, 10);
  tracer.crash(2);
  EXPECT_EQ(tracer.events_recorded(), 0u);
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.digest(), crypto::Digest{});
}

TEST(TracerTest, ClockStampsEvents) {
  Tracer tracer;
  std::uint64_t now = 42;
  tracer.set_clock([&now] { return now; });
  tracer.crash(1);
  now = 99;
  tracer.crash(2);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].time, 42u);
  EXPECT_EQ(events[1].time, 99u);
}

TEST(JsonlTest, WriteParseRoundTrip) {
  std::ostringstream out;
  for (std::uint64_t i = 0; i < 5; ++i)
    write_jsonl_line(out, sample_event(i), i);
  // One event with no peer and no tag (the optional fields).
  Event bare;
  bare.time = 7;
  bare.type = EventType::kCrash;
  bare.actor = 3;
  write_jsonl_line(out, bare, 5);

  std::istringstream in(out.str());
  std::uint64_t malformed = 0;
  const std::vector<Event> parsed = read_jsonl(in, &malformed);
  EXPECT_EQ(malformed, 0u);
  ASSERT_EQ(parsed.size(), 6u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(parsed[i], sample_event(i));
  EXPECT_EQ(parsed[5], bare);
}

TEST(JsonlTest, TagEscaping) {
  Event e = sample_event(0);
  e.tag = "weird\"tag\\with{}chars";
  std::ostringstream out;
  write_jsonl_line(out, e, 0);
  const auto parsed = parse_jsonl_line(out.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, e);
}

TEST(JsonlTest, MalformedLinesAreSkippedNotThrown) {
  std::istringstream in(
      "not json at all\n"
      "{\"t\":1,\"e\":\"NOPE\",\"p\":0,\"a0\":0,\"a1\":0}\n"  // unknown type
      "{\"t\":1,\"e\":\"SEND\",\"p\":0}\n"                    // missing args
      "{\"i\":9,\"t\":5,\"e\":\"CRASH\",\"p\":2,\"a0\":0,\"a1\":0}\n");
  std::uint64_t malformed = 0;
  const auto events = read_jsonl(in, &malformed);
  EXPECT_EQ(malformed, 3u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, EventType::kCrash);
  EXPECT_EQ(events[0].actor, 2u);
}

TEST(TracerTest, JsonlSinkMirrorsTheJournal) {
  const std::string path = testing::TempDir() + "tracer_sink_test.jsonl";
  TracerConfig config;
  config.ring_capacity = 0;
  config.jsonl_path = path;
  Tracer tracer(config);
  for (std::uint64_t i = 0; i < 20; ++i) {
    const Event e = sample_event(i);
    tracer.record(e.type, e.actor, e.peer, e.arg0, e.arg1, e.tag);
  }
  tracer.flush();

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::uint64_t malformed = 0;
  const std::vector<Event> from_file = read_jsonl(in, &malformed);
  EXPECT_EQ(malformed, 0u);
  EXPECT_EQ(from_file, tracer.events());
  // The digest is recomputable from the file alone — the property
  // trace_inspect relies on to verify traces offline.
  EXPECT_EQ(digest_of(from_file), tracer.digest());
}

TEST(EventTest, TypeNamesRoundTrip) {
  for (auto type :
       {EventType::kSend, EventType::kDeliver, EventType::kDrop,
        EventType::kLinkFault, EventType::kCrash, EventType::kSuspected,
        EventType::kRestored, EventType::kUpdateReceive,
        EventType::kUpdateMerge, EventType::kUpdateForward,
        EventType::kUpdateReject, EventType::kEpochAdvance,
        EventType::kQuorum}) {
    const auto name = event_type_name(type);
    EXPECT_NE(name, "UNKNOWN");
    EXPECT_EQ(event_type_from_name(name), type);
  }
  EXPECT_FALSE(event_type_from_name("UNKNOWN").has_value());
}

}  // namespace
}  // namespace qsel::trace
