// Replay determinism: the simulator promises that a run is a pure function
// of its seeds, and the trace digest turns that promise into an assertable
// property. These tests run the quorum-selection crash scenario (the same
// shape as QuorumClusterTest.DeterministicAcrossIdenticalRuns) under a
// tracer: identical seeds must give byte-identical digests, and differing
// seeds must both change the digest *and* let the ReplayChecker pinpoint
// the exact first diverging event.
#include "trace/replay.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "runtime/quorum_cluster.hpp"
#include "trace/jsonl.hpp"

namespace qsel::trace {
namespace {

constexpr SimDuration kMs = 1'000'000;

void run_scenario(std::uint64_t seed, Tracer& tracer) {
  runtime::QuorumClusterConfig config;
  config.n = 5;
  config.f = 2;
  config.seed = seed;
  config.network.base_latency = 1'000'000;
  config.network.jitter = 200'000;
  config.heartbeat_period = 5'000'000;
  config.fd.initial_timeout = 12'000'000;
  runtime::QuorumCluster cluster(config);
  cluster.attach_tracer(tracer);
  cluster.start();
  cluster.simulator().run_until(30 * kMs);
  cluster.network().crash(0);
  cluster.simulator().run_until(300 * kMs);
}

TracerConfig unbounded() {
  TracerConfig config;
  config.ring_capacity = 0;
  return config;
}

TEST(ReplayTest, SameSeedGivesByteIdenticalTraces) {
  Tracer a(unbounded());
  Tracer b(unbounded());
  run_scenario(7, a);
  run_scenario(7, b);

  // A real run records real work: crash + recovery means suspicions,
  // UPDATE gossip and at least one quorum change went through the journal.
  EXPECT_GT(a.events_recorded(), 100u);

  EXPECT_EQ(a.digest().bytes, b.digest().bytes) << "nondeterminism regression";
  EXPECT_EQ(a.events(), b.events());
  EXPECT_EQ(ReplayChecker::compare(a, b), std::nullopt);
}

TEST(ReplayTest, ReplayCheckerAcceptsDeterministicScenario) {
  EXPECT_EQ(ReplayChecker::check([](Tracer& t) { run_scenario(21, t); }),
            std::nullopt);
}

TEST(ReplayTest, DifferentSeedDivergesAndCheckerPinpointsFirstEvent) {
  Tracer a(unbounded());
  Tracer b(unbounded());
  run_scenario(7, a);
  run_scenario(8, b);

  EXPECT_NE(a.digest().bytes, b.digest().bytes);

  const auto divergence = ReplayChecker::compare(a, b);
  ASSERT_TRUE(divergence.has_value());

  // The checker must report the *first* diverging index with both decoded
  // events, not just "digests differ".
  const std::vector<Event> ea = a.events();
  const std::vector<Event> eb = b.events();
  const std::size_t at = static_cast<std::size_t>(divergence->index);
  ASSERT_LT(at, std::min(ea.size(), eb.size()));
  for (std::size_t i = 0; i < at; ++i)
    ASSERT_EQ(ea[i], eb[i]) << "events before the divergence must agree";
  EXPECT_NE(ea[at], eb[at]);
  ASSERT_TRUE(divergence->first.has_value());
  ASSERT_TRUE(divergence->second.has_value());
  EXPECT_EQ(*divergence->first, ea[at]);
  EXPECT_EQ(*divergence->second, eb[at]);
  EXPECT_NE(divergence->to_string().find("first divergence"),
            std::string::npos);
}

TEST(ReplayTest, CompareReportsMissingEventWhenOneRunIsShorter) {
  Tracer a(unbounded());
  Tracer b(unbounded());
  a.crash(0);
  a.crash(1);
  b.crash(0);
  const auto divergence = ReplayChecker::compare(a, b);
  ASSERT_TRUE(divergence.has_value());
  EXPECT_EQ(divergence->index, 1u);
  ASSERT_TRUE(divergence->first.has_value());
  EXPECT_FALSE(divergence->second.has_value());
}

TEST(ReplayTest, JsonlTraceReproducesTheRunDigest) {
  const std::string path = testing::TempDir() + "replay_scenario.jsonl";
  TracerConfig config;
  config.ring_capacity = 0;
  config.jsonl_path = path;
  Tracer tracer(config);
  run_scenario(7, tracer);
  tracer.flush();

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::uint64_t malformed = 0;
  const std::vector<Event> from_file = read_jsonl(in, &malformed);
  EXPECT_EQ(malformed, 0u);
  EXPECT_EQ(from_file.size(), tracer.events_recorded());
  EXPECT_EQ(digest_of(from_file), tracer.digest());
}

// The journal is not just deterministic noise — it contains the semantic
// events the paper reasons about, attributable to the injected fault.
TEST(ReplayTest, ScenarioJournalContainsTheExpectedEventKinds) {
  Tracer tracer(unbounded());
  run_scenario(7, tracer);

  bool saw_crash = false, saw_suspected = false, saw_merge = false,
       saw_quorum_without_0 = false;
  for (const Event& e : tracer.events()) {
    switch (e.type) {
      case EventType::kCrash:
        saw_crash = true;
        EXPECT_EQ(e.actor, 0u);
        break;
      case EventType::kSuspected:
        // Correct processes only ever suspect the crashed p0. (p0's own FD
        // also emits here: a crash only severs the network, so its local
        // timeouts still fire and it gradually suspects everyone else.)
        if (e.actor != 0 && e.arg0 != 0) {
          saw_suspected = true;
          EXPECT_EQ(e.arg0, ProcessSet{0}.mask());
        }
        break;
      case EventType::kUpdateMerge:
        saw_merge = true;
        break;
      case EventType::kQuorum:
        if (!(e.arg0 & 1)) saw_quorum_without_0 = true;
        break;
      default:
        break;
    }
  }
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_suspected);
  EXPECT_TRUE(saw_merge);
  EXPECT_TRUE(saw_quorum_without_0) << "no quorum excluding the crashed p0";
}

}  // namespace
}  // namespace qsel::trace
