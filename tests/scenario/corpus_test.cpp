// Seed-corpus regression: pinned trace digests for a small corpus of
// generator seeds across all three protocols. Any behavioural change in
// the simulator, the protocols, the tracer encoding or the generator
// shows up here as a digest mismatch — which is the point: such changes
// must be deliberate. Refresh the pins with
//
//   build/tools/qsel_fuzz --digests --runs 4 --seed 1
//
// (per protocol via --protocol) after auditing the diff that caused them
// to move.
#include <gtest/gtest.h>

#include "scenario/generator.hpp"
#include "scenario/runner.hpp"

namespace qsel::scenario {
namespace {

struct CorpusEntry {
  Protocol protocol;
  std::uint64_t seed;
  const char* digest_hex;
};

// REGENERATE: see file comment.
constexpr CorpusEntry kCorpus[] = {
    {Protocol::kQuorumSelection, 1,
     "8a8267bf9a7144a200967acf1580c60d64da9c099c3e4db9101ae6cf72d2666d"},
    {Protocol::kQuorumSelection, 2,
     "b2041bf488ee4c565f0bc5d00b9222a7af10c77fe1ce50f87013c8ead369a7b4"},
    {Protocol::kQuorumSelection, 3,
     "e429e1329b25d6b17d9f013ec82640b3fbcb7e563fb17a78ccc242b26d4621af"},
    {Protocol::kQuorumSelection, 4,
     "d40afa2bbecae3675bb8305029b361c09cb15f3f77ec782b32593424ae114824"},
    {Protocol::kFollowerSelection, 1,
     "acc67e496005beff5acc89c4fba08a6282fd5334a128746f93ca6e483842cad0"},
    {Protocol::kFollowerSelection, 2,
     "de30d1ed69c3197edefcb43db8521164241be8089107fc937ac0a9e510e8b2fe"},
    {Protocol::kFollowerSelection, 3,
     "c18576318f992bcdf98ba2d9b29f3e37b88cb9afe1928b5e8fc7cc8ead041615"},
    {Protocol::kFollowerSelection, 4,
     "563e97760a0e1a6eb98e88704dce2f1979dfef3f0ce14cc90facc29e2b674efc"},
    {Protocol::kXPaxos, 1,
     "e311e385b6050915457457b2dd62f968631e0baa1a8e655d1d5e294d8ed1e610"},
    {Protocol::kXPaxos, 2,
     "761d12af99662e8f65f9fce6b86769d650a5e74e0c690e3f202c4a13febefd08"},
    // Combined-archetype seeds (faults layered): 42 is a qs adversary
    // walk with a mid-walk partition, 15 a qs partition with crashes at
    // the heal; 10 and 14 are the fs counterparts. Picked by scanning
    // seeds 1..120 for partition+injection / partition+crash schedules.
    {Protocol::kQuorumSelection, 15,
     "620ae4dff61eaba07072ebfd09df337c996b1e221f794a9a995b9e6b7a343e59"},
    {Protocol::kQuorumSelection, 42,
     "c368b76b89bf6960af5c77b50f31964dda30a648dd56abb20a328922b0bba411"},
    {Protocol::kFollowerSelection, 10,
     "250f6ba6d369a1e9f199c7e70a1ee6bc12373bf044f211ad474321d0fe168be8"},
    {Protocol::kFollowerSelection, 14,
     "e3c802aa15c87fdebca60a35445390eb82d3ecf2ae87f27d8046d69c47de442b"},
    // Crash-then-restart archetype seeds (qs only): durable recovery
    // exercised under the fuzzer's oracles. 11 crashes and revives two
    // victims with overlapping outages, 20 three victims, and 24 includes
    // a double crash-restart of one victim (recovery idempotence); picked
    // by scanning seeds 1..200 for restart schedules.
    {Protocol::kQuorumSelection, 11,
     "1592093b58f5e0e62c3771b00a06bf970e99d5fd35ba566e5460539be25aebab"},
    {Protocol::kQuorumSelection, 20,
     "fd0d2c0471163240f54e1b626471ffa474a208dd15487553a455f9630bcb6f50"},
    {Protocol::kQuorumSelection, 24,
     "41a474da48998f523249fb6156a888af9e5492cf2807482605ce0ca86c9296fd"},
};

class CorpusTest : public ::testing::TestWithParam<CorpusEntry> {};

TEST_P(CorpusTest, PinnedDigestMatches) {
  const CorpusEntry& entry = GetParam();
  const ScheduleGenerator generator({});
  const Schedule schedule = generator.generate(entry.protocol, entry.seed);
  const RunResult result = run_schedule(schedule);
  EXPECT_TRUE(result.report.ok())
      << schedule.summary() << ": " << result.report.to_string();
  EXPECT_EQ(result.digest.to_hex(), entry.digest_hex)
      << schedule.summary()
      << "\nA digest change means simulator/protocol/tracer behaviour "
         "changed; audit it, then refresh the pin (see file comment).";
}

INSTANTIATE_TEST_SUITE_P(
    PinnedSeeds, CorpusTest, ::testing::ValuesIn(kCorpus),
    [](const auto& param_info) {
      return std::string(protocol_name(param_info.param.protocol))
          .append("_seed")
          .append(std::to_string(param_info.param.seed));
    });

}  // namespace
}  // namespace qsel::scenario
