// Seed-corpus regression: pinned trace digests for a small corpus of
// generator seeds across all three protocols. Any behavioural change in
// the simulator, the protocols, the tracer encoding or the generator
// shows up here as a digest mismatch — which is the point: such changes
// must be deliberate. Refresh the pins with
//
//   build/tools/qsel_fuzz --digests --runs 4 --seed 1
//
// (per protocol via --protocol) after auditing the diff that caused them
// to move.
#include <gtest/gtest.h>

#include "scenario/generator.hpp"
#include "scenario/runner.hpp"

namespace qsel::scenario {
namespace {

struct CorpusEntry {
  Protocol protocol;
  std::uint64_t seed;
  const char* digest_hex;
};

// REGENERATE: see file comment.
constexpr CorpusEntry kCorpus[] = {
    {Protocol::kQuorumSelection, 1,
     "cc997fbb2be884c1751e60510d1d39ebfc07f8cbc157831738ce911308a3b9f8"},
    {Protocol::kQuorumSelection, 2,
     "9098a51589929954d1623f69b411de731ae80f567884f0c857d62589c790ea01"},
    {Protocol::kQuorumSelection, 3,
     "ef7f51441d7635057f9b8f16957d182660466ea577e1ab596353d9d8b1eb43d5"},
    {Protocol::kQuorumSelection, 4,
     "266ad1820ce8102da65d458638023bafb49897cd517cc761e406ed7fd8630898"},
    {Protocol::kFollowerSelection, 1,
     "6edc1ecc32f73770caad6f2375d7705d80b065509a45007d0eafafd71afdf8eb"},
    {Protocol::kFollowerSelection, 2,
     "cf49fde9e5a2a01045626bedaddebe60dfe4e6c3a0d95635c55edb03fd751b98"},
    {Protocol::kFollowerSelection, 3,
     "d5c184ca8a495cbd613455821eb3d4cf922fadfd95d92467518c2680ef6de775"},
    {Protocol::kFollowerSelection, 4,
     "00fdf66d5dea79390702b10405a873a31d07ce8c076f34cb8602e325e18571d5"},
    {Protocol::kXPaxos, 1,
     "52506ca768837d42ed8b2fe33dd48db502ef794fdffdce5fe3e4b69aca65678e"},
    {Protocol::kXPaxos, 2,
     "0a7897784eae063987f53c96b455742383a6567199d8f1e3128efac6170947b3"},
    // Combined-archetype seeds (faults layered): 11/18 are qs adversary
    // walks with a mid-walk partition, 15 a qs partition with crashes at
    // the heal; 10 and 14 are the fs counterparts. Picked by scanning
    // seeds 1..120 for partition+injection / partition+crash schedules.
    {Protocol::kQuorumSelection, 11,
     "1b5bca8e77c911419e593e4de1af6a574084df3149b534d1ad3cc0f72cb44ee1"},
    {Protocol::kQuorumSelection, 15,
     "4664f21cfa992859abcfe9a9ab275cb5d2e6c1f6ab225f6a1a55d1c8e16c96bf"},
    {Protocol::kQuorumSelection, 18,
     "6ff081d849836ce789c10ef418f667491b5983ccc62c8c93a5ddfc94660b8685"},
    {Protocol::kFollowerSelection, 10,
     "94e5024205556d1af9798d60f68958997ac84a590227242a268fcbb89541e0c1"},
    {Protocol::kFollowerSelection, 14,
     "c33afa92e47711a1dd5f34c80cea006ad25cdc4557c1a777a4c77d06e36625b7"},
};

class CorpusTest : public ::testing::TestWithParam<CorpusEntry> {};

TEST_P(CorpusTest, PinnedDigestMatches) {
  const CorpusEntry& entry = GetParam();
  const ScheduleGenerator generator({});
  const Schedule schedule = generator.generate(entry.protocol, entry.seed);
  const RunResult result = run_schedule(schedule);
  EXPECT_TRUE(result.report.ok())
      << schedule.summary() << ": " << result.report.to_string();
  EXPECT_EQ(result.digest.to_hex(), entry.digest_hex)
      << schedule.summary()
      << "\nA digest change means simulator/protocol/tracer behaviour "
         "changed; audit it, then refresh the pin (see file comment).";
}

INSTANTIATE_TEST_SUITE_P(
    PinnedSeeds, CorpusTest, ::testing::ValuesIn(kCorpus),
    [](const auto& param_info) {
      return std::string(protocol_name(param_info.param.protocol))
          .append("_seed")
          .append(std::to_string(param_info.param.seed));
    });

}  // namespace
}  // namespace qsel::scenario
