// Seed-corpus regression: pinned trace digests for a small corpus of
// generator seeds across all three protocols. Any behavioural change in
// the simulator, the protocols, the tracer encoding or the generator
// shows up here as a digest mismatch — which is the point: such changes
// must be deliberate. Refresh the pins with
//
//   build/tools/qsel_fuzz --digests --runs 4 --seed 1
//
// (per protocol via --protocol) after auditing the diff that caused them
// to move.
#include <gtest/gtest.h>

#include "scenario/generator.hpp"
#include "scenario/runner.hpp"

namespace qsel::scenario {
namespace {

struct CorpusEntry {
  Protocol protocol;
  std::uint64_t seed;
  const char* digest_hex;
};

// REGENERATE: see file comment.
constexpr CorpusEntry kCorpus[] = {
    {Protocol::kQuorumSelection, 1,
     "c194179d8485d6979584f04a9a89ffee51fff9bb5594c00812b449d4c1424215"},
    {Protocol::kQuorumSelection, 2,
     "f842a486e71ed909f27de37987a2edacdda64fa078e6b338e8c0eb178fe8ffa5"},
    {Protocol::kQuorumSelection, 3,
     "82b0477ce45861598283b40d8edc7f44a04d0f4645270f9fc02deeccf2561d2c"},
    {Protocol::kQuorumSelection, 4,
     "90fd7489723464efe10e031a4cf31255805d914072ee80d74eefe65ac1c759a9"},
    {Protocol::kFollowerSelection, 1,
     "aec3a807cae3c161ff3bd4bb38db95b9cc5e5dbd3f7aaee046a0abe721de7136"},
    {Protocol::kFollowerSelection, 2,
     "cf49fde9e5a2a01045626bedaddebe60dfe4e6c3a0d95635c55edb03fd751b98"},
    {Protocol::kFollowerSelection, 3,
     "9300cd10ac5109ac73fc70e29e09c8ac3630fc544a27c4e0e1e33a1d4511152c"},
    {Protocol::kFollowerSelection, 4,
     "d504d8a83f8ff8ae96eee4cbc43559aaa2f6f4972625a529b6746df1eea4f22a"},
    {Protocol::kXPaxos, 1,
     "52506ca768837d42ed8b2fe33dd48db502ef794fdffdce5fe3e4b69aca65678e"},
    {Protocol::kXPaxos, 2,
     "0a7897784eae063987f53c96b455742383a6567199d8f1e3128efac6170947b3"},
};

class CorpusTest : public ::testing::TestWithParam<CorpusEntry> {};

TEST_P(CorpusTest, PinnedDigestMatches) {
  const CorpusEntry& entry = GetParam();
  const ScheduleGenerator generator({});
  const Schedule schedule = generator.generate(entry.protocol, entry.seed);
  const RunResult result = run_schedule(schedule);
  EXPECT_TRUE(result.report.ok())
      << schedule.summary() << ": " << result.report.to_string();
  EXPECT_EQ(result.digest.to_hex(), entry.digest_hex)
      << schedule.summary()
      << "\nA digest change means simulator/protocol/tracer behaviour "
         "changed; audit it, then refresh the pin (see file comment).";
}

INSTANTIATE_TEST_SUITE_P(
    PinnedSeeds, CorpusTest, ::testing::ValuesIn(kCorpus),
    [](const auto& param_info) {
      return std::string(protocol_name(param_info.param.protocol))
          .append("_seed")
          .append(std::to_string(param_info.param.seed));
    });

}  // namespace
}  // namespace qsel::scenario
