// Seed-corpus regression: pinned trace digests for a small corpus of
// generator seeds across all three protocols. Any behavioural change in
// the simulator, the protocols, the tracer encoding or the generator
// shows up here as a digest mismatch — which is the point: such changes
// must be deliberate. Refresh the pins with
//
//   build/tools/qsel_fuzz --digests --runs 4 --seed 1
//
// (per protocol via --protocol) after auditing the diff that caused them
// to move.
#include <gtest/gtest.h>

#include "scenario/generator.hpp"
#include "scenario/runner.hpp"

namespace qsel::scenario {
namespace {

struct CorpusEntry {
  Protocol protocol;
  std::uint64_t seed;
  const char* digest_hex;
};

// REGENERATE: see file comment.
constexpr CorpusEntry kCorpus[] = {
    {Protocol::kQuorumSelection, 1,
     "1c56a9e472ef79bae54e3ce59db2a45cd3cd172d286f23b4c5b4bf7f0cd649c1"},
    {Protocol::kQuorumSelection, 2,
     "eacb422c3e12051e6d0596c31229e28dfb8112a23159bff4ab2da1a10261a570"},
    {Protocol::kQuorumSelection, 3,
     "ef7f51441d7635057f9b8f16957d182660466ea577e1ab596353d9d8b1eb43d5"},
    {Protocol::kQuorumSelection, 4,
     "0f64ba3c63c96a96fd516cf1f39c323c6e60271025cc52ac7eb2bf6a3e174bf5"},
    {Protocol::kFollowerSelection, 1,
     "6edc1ecc32f73770caad6f2375d7705d80b065509a45007d0eafafd71afdf8eb"},
    {Protocol::kFollowerSelection, 2,
     "cf49fde9e5a2a01045626bedaddebe60dfe4e6c3a0d95635c55edb03fd751b98"},
    {Protocol::kFollowerSelection, 3,
     "d5c184ca8a495cbd613455821eb3d4cf922fadfd95d92467518c2680ef6de775"},
    {Protocol::kFollowerSelection, 4,
     "00fdf66d5dea79390702b10405a873a31d07ce8c076f34cb8602e325e18571d5"},
    {Protocol::kXPaxos, 1,
     "52506ca768837d42ed8b2fe33dd48db502ef794fdffdce5fe3e4b69aca65678e"},
    {Protocol::kXPaxos, 2,
     "0a7897784eae063987f53c96b455742383a6567199d8f1e3128efac6170947b3"},
    // Combined-archetype seeds (faults layered): 42 is a qs adversary
    // walk with a mid-walk partition, 15 a qs partition with crashes at
    // the heal; 10 and 14 are the fs counterparts. Picked by scanning
    // seeds 1..120 for partition+injection / partition+crash schedules.
    {Protocol::kQuorumSelection, 15,
     "4664f21cfa992859abcfe9a9ab275cb5d2e6c1f6ab225f6a1a55d1c8e16c96bf"},
    {Protocol::kQuorumSelection, 42,
     "7e8f4f22083b50f5da6458f7a3fa1627849b6331a17ebfcfb3fd79064113f4a8"},
    {Protocol::kFollowerSelection, 10,
     "94e5024205556d1af9798d60f68958997ac84a590227242a268fcbb89541e0c1"},
    {Protocol::kFollowerSelection, 14,
     "c33afa92e47711a1dd5f34c80cea006ad25cdc4557c1a777a4c77d06e36625b7"},
    // Crash-then-restart archetype seeds (qs only): durable recovery
    // exercised under the fuzzer's oracles. 11 crashes and revives two
    // victims with overlapping outages, 20 three victims, and 24 includes
    // a double crash-restart of one victim (recovery idempotence); picked
    // by scanning seeds 1..200 for restart schedules.
    {Protocol::kQuorumSelection, 11,
     "d19527e9726e4270de7279ffe250bba8efef9019bb5d5dc3e70104b374ec46a2"},
    {Protocol::kQuorumSelection, 20,
     "cecc47712d220d6cd4c683f3a508f1baa299128a827c396e33790dd53c17b923"},
    {Protocol::kQuorumSelection, 24,
     "1776820d53a647b14546db04da3ce3e63c1759c640d69e736f9db2706a04daf7"},
};

class CorpusTest : public ::testing::TestWithParam<CorpusEntry> {};

TEST_P(CorpusTest, PinnedDigestMatches) {
  const CorpusEntry& entry = GetParam();
  const ScheduleGenerator generator({});
  const Schedule schedule = generator.generate(entry.protocol, entry.seed);
  const RunResult result = run_schedule(schedule);
  EXPECT_TRUE(result.report.ok())
      << schedule.summary() << ": " << result.report.to_string();
  EXPECT_EQ(result.digest.to_hex(), entry.digest_hex)
      << schedule.summary()
      << "\nA digest change means simulator/protocol/tracer behaviour "
         "changed; audit it, then refresh the pin (see file comment).";
}

INSTANTIATE_TEST_SUITE_P(
    PinnedSeeds, CorpusTest, ::testing::ValuesIn(kCorpus),
    [](const auto& param_info) {
      return std::string(protocol_name(param_info.param.protocol))
          .append("_seed")
          .append(std::to_string(param_info.param.seed));
    });

}  // namespace
}  // namespace qsel::scenario
