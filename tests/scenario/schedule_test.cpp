// Schedule model tests: JSON reproducer round-trips, structural
// validation, and generator well-formedness across a seed sweep.
#include "scenario/schedule.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "scenario/generator.hpp"

namespace qsel::scenario {
namespace {

constexpr SimDuration kMs = 1'000'000;

Schedule base_schedule() {
  Schedule schedule;
  schedule.protocol = Protocol::kQuorumSelection;
  schedule.n = 5;
  schedule.f = 2;
  schedule.seed = 42;
  schedule.actions = {
      {20 * kMs, FaultKind::kLinkDown, 1, 3, 0},
      {40 * kMs, FaultKind::kCrash, 1, kNoProcess, 0},
      {60 * kMs, FaultKind::kLinkUp, 1, 3, 0},
  };
  return schedule;
}

TEST(ScheduleTest, JsonRoundTripsEveryField) {
  Schedule schedule = base_schedule();
  schedule.gst = 80 * kMs;
  schedule.pre_gst_extra = 15 * kMs;
  schedule.heartbeat_period = 7 * kMs;
  ASSERT_EQ(schedule.validate(), std::nullopt);

  const auto parsed = Schedule::from_json(schedule.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, schedule);
}

TEST(ScheduleTest, JsonRoundTripsAdversarySchedules) {
  Schedule schedule;
  schedule.protocol = Protocol::kFollowerSelection;
  schedule.n = 4;
  schedule.f = 1;
  schedule.byzantine = ProcessSet{0};
  schedule.actions = {
      {20 * kMs, FaultKind::kInjectSuspicion, 0, 2, 0},
      {45 * kMs, FaultKind::kInjectSuspicion, 0, 3, 0},
  };
  ASSERT_EQ(schedule.validate(), std::nullopt);

  const auto parsed = Schedule::from_json(schedule.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, schedule);
}

TEST(ScheduleTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(Schedule::from_json("").has_value());
  EXPECT_FALSE(Schedule::from_json("{}").has_value());
  EXPECT_FALSE(Schedule::from_json("not json at all").has_value());
}

TEST(ScheduleTest, ValidateRejectsStructuralProblems) {
  {
    Schedule schedule = base_schedule();
    schedule.f = 3;  // n - f > f fails for n = 5
    EXPECT_TRUE(schedule.validate().has_value());
  }
  {
    Schedule schedule = base_schedule();
    schedule.protocol = Protocol::kFollowerSelection;  // needs n > 3f
    EXPECT_TRUE(schedule.validate().has_value());
  }
  {
    Schedule schedule = base_schedule();
    std::swap(schedule.actions[0], schedule.actions[1]);  // out of order
    EXPECT_TRUE(schedule.validate().has_value());
  }
  {
    Schedule schedule = base_schedule();
    schedule.actions.push_back(
        {30 * kMs, FaultKind::kPartition, kNoProcess, kNoProcess, 0b00011});
    EXPECT_TRUE(schedule.validate().has_value());  // never healed
    // (and also unordered — fix the ordering, keep it unhealed)
    std::stable_sort(schedule.actions.begin(), schedule.actions.end(),
                     [](const FaultAction& x, const FaultAction& y) {
                       return x.at < y.at;
                     });
    EXPECT_TRUE(schedule.validate().has_value());
  }
  {
    Schedule schedule = base_schedule();
    // Link faults on three distinct sources exceed the f = 2 culprit budget.
    schedule.actions = {
        {20 * kMs, FaultKind::kLinkDown, 0, 3, 0},
        {21 * kMs, FaultKind::kLinkDown, 1, 3, 0},
        {22 * kMs, FaultKind::kLinkDown, 2, 3, 0},
    };
    EXPECT_TRUE(schedule.validate().has_value());
  }
  {
    Schedule schedule = base_schedule();
    // A link that stays dead through the quiet window means GST never
    // arrives for that pair — same model boundary as an unhealed
    // partition. Restoring a *different* link does not help.
    schedule.actions = {{20 * kMs, FaultKind::kLinkDown, 1, 3, 0},
                        {40 * kMs, FaultKind::kLinkUp, 3, 1, 0}};
    EXPECT_TRUE(schedule.validate().has_value());
    schedule.actions.push_back({60 * kMs, FaultKind::kLinkUp, 1, 3, 0});
    EXPECT_EQ(schedule.validate(), std::nullopt);
  }
  {
    Schedule schedule = base_schedule();
    schedule.actions.push_back(
        {70 * kMs, FaultKind::kInjectSuspicion, 1, 2, 0});
    EXPECT_TRUE(schedule.validate().has_value());  // author not Byzantine
  }
  {
    Schedule schedule = base_schedule();
    schedule.quiet_start = 30 * kMs;  // actions continue past quiet_start
    EXPECT_TRUE(schedule.validate().has_value());
  }
  {
    // Restarting a byzantine process: no process is ever instantiated
    // for it (the adversary speaks at the network layer), so there is
    // nothing to rebuild. Found by the campaign mutator composing a
    // crash/restart atom onto an adversary-walk schedule.
    Schedule schedule = base_schedule();
    schedule.byzantine = ProcessSet{2};
    schedule.actions.push_back({70 * kMs, FaultKind::kCrash, 2, kNoProcess, 0});
    schedule.actions.push_back(
        {90 * kMs, FaultKind::kRestart, 2, kNoProcess, 0});
    EXPECT_TRUE(schedule.validate().has_value());
    // The same atom against a correct process is fine (byzantine moves
    // to process 1, already a culprit, to stay within the f budget).
    schedule.byzantine = ProcessSet{1};
    EXPECT_EQ(schedule.validate(), std::nullopt);
  }
  {
    // Partition with heartbeats disabled: the anti-entropy resync that
    // repairs post-heal divergence is heartbeat-driven, so the CRDT
    // convergence oracle would have no premise — model boundary.
    Schedule schedule = base_schedule();
    schedule.actions.push_back(
        {70 * kMs, FaultKind::kPartition, kNoProcess, kNoProcess, 0b00011});
    schedule.actions.push_back(
        {80 * kMs, FaultKind::kHeal, kNoProcess, kNoProcess, 0});
    EXPECT_EQ(schedule.validate(), std::nullopt);
    schedule.heartbeat_period = 0;
    EXPECT_TRUE(schedule.validate().has_value());
  }
}

TEST(ScheduleTest, CulpritsAndAttributability) {
  Schedule schedule = base_schedule();
  EXPECT_EQ(schedule.culprits(), ProcessSet{1});
  EXPECT_TRUE(schedule.attributable());

  schedule.pre_gst_extra = 10 * kMs;
  EXPECT_FALSE(schedule.attributable());
  schedule.pre_gst_extra = 0;

  schedule.actions = {
      {20 * kMs, FaultKind::kPartition, kNoProcess, kNoProcess, 0b00001},
      {50 * kMs, FaultKind::kHeal, kNoProcess, kNoProcess, 0},
  };
  EXPECT_TRUE(schedule.has_partition());
  EXPECT_FALSE(schedule.attributable());
}

TEST(ScheduleTest, GeneratorEmitsValidRoundTrippableSchedules) {
  const ScheduleGenerator generator({});
  for (const Protocol protocol :
       {Protocol::kQuorumSelection, Protocol::kFollowerSelection,
        Protocol::kXPaxos}) {
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
      const Schedule schedule = generator.generate(protocol, seed);
      EXPECT_EQ(schedule.validate(), std::nullopt)
          << protocol_name(protocol) << " seed " << seed;
      const auto parsed = Schedule::from_json(schedule.to_json());
      ASSERT_TRUE(parsed.has_value())
          << protocol_name(protocol) << " seed " << seed;
      EXPECT_EQ(*parsed, schedule);
    }
  }
}

TEST(ScheduleTest, GeneratorIsDeterministicPerSeed) {
  const ScheduleGenerator generator({});
  for (std::uint64_t seed : {0ULL, 17ULL, 123456789ULL}) {
    EXPECT_EQ(generator.generate(Protocol::kQuorumSelection, seed),
              generator.generate(Protocol::kQuorumSelection, seed));
    EXPECT_EQ(generator.generate(Protocol::kFollowerSelection, seed),
              generator.generate(Protocol::kFollowerSelection, seed));
  }
}

TEST(ScheduleTest, NameConversionsRoundTrip) {
  for (const Protocol protocol :
       {Protocol::kQuorumSelection, Protocol::kFollowerSelection,
        Protocol::kXPaxos})
    EXPECT_EQ(protocol_from_name(protocol_name(protocol)), protocol);
  for (const FaultKind kind :
       {FaultKind::kCrash, FaultKind::kLinkDown, FaultKind::kLinkUp,
        FaultKind::kLinkDelay, FaultKind::kPartition, FaultKind::kHeal,
        FaultKind::kInjectSuspicion})
    EXPECT_EQ(fault_kind_from_name(fault_kind_name(kind)), kind);
  EXPECT_EQ(protocol_from_name("nope"), std::nullopt);
  EXPECT_EQ(fault_kind_from_name("nope"), std::nullopt);
}

}  // namespace
}  // namespace qsel::scenario
