// ScheduleGenerator distribution tests: every archetype the generator
// advertises must actually appear in a modest seed sweep, every emitted
// schedule must validate, and the combined archetype (faults layered:
// adversary walk x partition, partition x crashes) must show up with both
// of its variants for both selection protocols. The counts are pinned
// loosely — enough to catch a dead branch or a probability typo without
// welding the test to the exact RNG stream.
#include "scenario/generator.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "scenario/schedule.hpp"

namespace qsel::scenario {
namespace {

constexpr std::uint64_t kSeeds = 300;

struct Features {
  bool partition = false;
  bool injection = false;
  bool crash = false;
  bool link_fault = false;
  bool restart = false;
};

Features features_of(const Schedule& schedule) {
  Features features;
  for (const FaultAction& action : schedule.actions) {
    switch (action.kind) {
      case FaultKind::kPartition:
        features.partition = true;
        break;
      case FaultKind::kInjectSuspicion:
        features.injection = true;
        break;
      case FaultKind::kCrash:
        features.crash = true;
        break;
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp:
      case FaultKind::kLinkDelay:
        features.link_fault = true;
        break;
      case FaultKind::kRestart:
        features.restart = true;
        break;
      case FaultKind::kHeal:
        break;
    }
  }
  return features;
}

class GeneratorSweepTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(GeneratorSweepTest, EveryScheduleValidatesAndCombinedMixAppears) {
  const Protocol protocol = GetParam();
  const ScheduleGenerator generator({});

  std::uint64_t walk_with_partition = 0;   // combined variant A
  std::uint64_t crash_with_partition = 0;  // combined variant B
  std::uint64_t plain_partitions = 0;
  std::uint64_t plain_walks = 0;
  std::uint64_t link_faults = 0;
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;

  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const Schedule schedule = generator.generate(protocol, seed);
    ASSERT_EQ(schedule.validate(), std::nullopt) << schedule.summary();

    // Model boundary: a partition with heartbeats disabled would leave the
    // anti-entropy resync with no trigger, so the generator must never
    // emit one (Schedule::validate rejects it).
    if (schedule.has_partition()) {
      EXPECT_NE(schedule.heartbeat_period, 0);
    }

    const Features features = features_of(schedule);
    if (features.injection) {
      // Byzantine walks always come with their culprit cover.
      EXPECT_FALSE(schedule.byzantine.empty()) << schedule.summary();
      if (features.partition)
        ++walk_with_partition;
      else
        ++plain_walks;
    }
    if (features.crash) {
      ++crashes;
      if (features.partition) ++crash_with_partition;
    }
    if (features.partition && !features.injection && !features.crash)
      ++plain_partitions;
    if (features.link_fault) ++link_faults;
    if (features.restart) ++restarts;
  }

  // Each combined variant is chosen with probability (1/5 or 1/6) * 1/2,
  // i.e. 8-10%; a 300-seed sweep gives ~25-30 of each. The floor of 10
  // survives RNG drift but dies with the branch.
  EXPECT_GE(walk_with_partition, 10u);
  EXPECT_GE(crash_with_partition, 10u);
  EXPECT_GE(plain_partitions, 10u);
  EXPECT_GE(plain_walks, 10u);
  EXPECT_GE(link_faults, 10u);
  EXPECT_GE(crashes, 10u);
  // Crash-recovery is a quorum-selection-only archetype: the durable
  // NodeProcess stack is what restart() rebuilds from.
  if (protocol == Protocol::kQuorumSelection)
    EXPECT_GE(restarts, 10u);
  else
    EXPECT_EQ(restarts, 0u);
}

TEST_P(GeneratorSweepTest, PartitionedSchedulesGetTheLongSettle) {
  const Protocol protocol = GetParam();
  const ScheduleGenerator generator({});
  constexpr SimDuration kMs = 1'000'000;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const Schedule schedule = generator.generate(protocol, seed);
    SimTime last = 0;
    for (const FaultAction& action : schedule.actions)
      last = std::max(last, action.at);
    const SimDuration settle = schedule.quiet_start - last;
    if (!schedule.byzantine.empty() && schedule.has_partition())
      EXPECT_GE(settle, 5000 * kMs) << schedule.summary();
    else if (schedule.has_partition())
      EXPECT_GE(settle, 4500 * kMs) << schedule.summary();
    else
      EXPECT_GE(settle, 3000 * kMs) << schedule.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, GeneratorSweepTest,
                         ::testing::Values(Protocol::kQuorumSelection,
                                           Protocol::kFollowerSelection),
                         [](const auto& param_info) {
                           return std::string(
                               protocol_name(param_info.param));
                         });

TEST(GeneratorTest, XPaxosNeverSeesSelectionOnlyFaults) {
  const ScheduleGenerator generator({});
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const Schedule schedule = generator.generate(Protocol::kXPaxos, seed);
    ASSERT_EQ(schedule.validate(), std::nullopt) << schedule.summary();
    const Features features = features_of(schedule);
    EXPECT_FALSE(features.injection) << schedule.summary();
    EXPECT_FALSE(features.partition) << schedule.summary();
  }
}

TEST(GeneratorTest, SameSeedSameSchedule) {
  const ScheduleGenerator generator({});
  for (std::uint64_t seed : {0ULL, 17ULL, 123456789ULL}) {
    const Schedule first = generator.generate(Protocol::kQuorumSelection,
                                              seed);
    const Schedule second = generator.generate(Protocol::kQuorumSelection,
                                               seed);
    EXPECT_EQ(first.to_json(), second.to_json());
  }
}

}  // namespace
}  // namespace qsel::scenario
