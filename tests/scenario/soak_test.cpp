// Long-label soak: a miniature in-process fuzz campaign per protocol.
// Not part of tier1 — run with `ctest -L long` (tools/ci.sh does a larger
// campaign through the qsel_fuzz binary instead).
#include <gtest/gtest.h>

#include "scenario/generator.hpp"
#include "scenario/runner.hpp"

namespace qsel::scenario {
namespace {

class ScenarioSoak : public ::testing::TestWithParam<Protocol> {};

TEST_P(ScenarioSoak, RandomSchedulesSatisfyEveryOracle) {
  const ScheduleGenerator generator({});
  for (std::uint64_t seed = 1000; seed < 1040; ++seed) {
    const Schedule schedule = generator.generate(GetParam(), seed);
    const RunResult result = run_schedule(schedule);
    EXPECT_TRUE(result.report.ok())
        << schedule.summary() << ": " << result.report.to_string() << "\n"
        << schedule.to_json();
    // Digest determinism on a subsample (replays double the runtime).
    if (seed % 8 == 0) {
      EXPECT_EQ(run_schedule(schedule).digest, result.digest)
          << schedule.summary();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ScenarioSoak,
                         ::testing::Values(Protocol::kQuorumSelection,
                                           Protocol::kFollowerSelection,
                                           Protocol::kXPaxos),
                         [](const auto& param_info) {
                           return std::string(protocol_name(param_info.param));
                         });

}  // namespace
}  // namespace qsel::scenario
