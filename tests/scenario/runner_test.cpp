// ScenarioRunner integration tests: clean runs satisfy every oracle, the
// digest is a deterministic function of the schedule, the adversary-walk
// injection stays within the paper's bounds, and the test-only bug hook
// manifests as an agreement violation (the shrinker test builds on this).
#include "scenario/runner.hpp"

#include <gtest/gtest.h>

#include "scenario/generator.hpp"

namespace qsel::scenario {
namespace {

constexpr SimDuration kMs = 1'000'000;

Schedule crash_schedule() {
  Schedule schedule;
  schedule.protocol = Protocol::kQuorumSelection;
  schedule.n = 4;
  schedule.f = 1;
  schedule.seed = 3;
  // Crash the initial quorum member p0, so survivors must agree on a new
  // quorum — which also makes TestBug::kStuckQuorum observable.
  schedule.actions = {{50 * kMs, FaultKind::kCrash, 0, kNoProcess, 0}};
  return schedule;
}

TEST(RunnerTest, FaultFreeRunSatisfiesAllOracles) {
  Schedule schedule;
  schedule.protocol = Protocol::kQuorumSelection;
  schedule.quiet_start = 1000 * kMs;  // nothing to settle from
  const RunResult result = run_schedule(schedule);
  EXPECT_TRUE(result.report.ok()) << result.report.to_string();
  EXPECT_EQ(result.total_quorums, 0u);  // initial quorum, never changed
  EXPECT_GT(result.messages_sent, 0u);
}

TEST(RunnerTest, CrashRunSatisfiesOraclesAndChangesQuorum) {
  const RunResult result = run_schedule(crash_schedule());
  EXPECT_TRUE(result.report.ok()) << result.report.to_string();
  EXPECT_GT(result.total_quorums, 0u);
  for (const ProcessObservation& process : result.observations.processes) {
    if (!process.alive) continue;
    EXPECT_FALSE(process.quorum.contains(0));
  }
}

TEST(RunnerTest, DigestIsDeterministicAndScheduleSensitive) {
  const Schedule schedule = crash_schedule();
  const RunResult a = run_schedule(schedule);
  const RunResult b = run_schedule(schedule);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.messages_sent, b.messages_sent);

  Schedule other = schedule;
  other.actions[0].a = 1;  // crash a different process
  EXPECT_NE(run_schedule(other).digest, a.digest);
}

TEST(RunnerTest, FollowerSelectionRecoversFromMissedAnnouncement) {
  // Regression for a real finding of the fuzzer: p0, partitioned away
  // while the remaining processes elected a leader, missed the one-shot
  // FOLLOWERS broadcast and — before the leader learned to retransmit its
  // announcement to stale heartbeaters — kept suspecting the leader and
  // reporting the old quorum forever.
  Schedule schedule;
  schedule.protocol = Protocol::kFollowerSelection;
  schedule.n = 6;
  schedule.f = 1;
  schedule.seed = 9225502471676843235ULL;
  schedule.actions = {
      {20 * kMs, FaultKind::kPartition, kNoProcess, kNoProcess, 0b000001},
      {45 * kMs, FaultKind::kHeal, kNoProcess, kNoProcess, 0},
  };
  schedule.quiet_start = 4545 * kMs;
  const RunResult result = run_schedule(schedule);
  EXPECT_TRUE(result.report.ok()) << result.report.to_string();
}

TEST(RunnerTest, AdversaryWalkScheduleStaysWithinTheoremBounds) {
  const ScheduleGenerator generator({});
  // Hunt for adversary-archetype schedules among the first seeds; the
  // oracle layer then checks the Theorem 3 / Theorem 9 bounds.
  int found = 0;
  for (std::uint64_t seed = 0; seed < 40 && found < 2; ++seed) {
    const Schedule schedule =
        generator.generate(Protocol::kQuorumSelection, seed);
    if (schedule.byzantine.empty()) continue;
    ++found;
    const RunResult result = run_schedule(schedule);
    EXPECT_TRUE(result.report.ok())
        << "seed " << seed << ": " << result.report.to_string();
  }
  EXPECT_GT(found, 0) << "no adversary schedule in the probed seed range";
}

TEST(RunnerTest, InjectedAgreementBugIsCaught) {
  const Schedule schedule = crash_schedule();
  RunOptions options;
  options.trace = false;
  options.test_bug = TestBug::kStuckQuorum;
  const RunResult buggy = run_schedule(schedule, options);
  ASSERT_FALSE(buggy.report.ok());
  bool agreement = false;
  for (const Violation& violation : buggy.report.violations)
    agreement |= violation.oracle == "agreement";
  EXPECT_TRUE(agreement) << buggy.report.to_string();

  options.test_bug = TestBug::kNone;
  EXPECT_TRUE(run_schedule(schedule, options).report.ok());
}

TEST(RunnerTest, XPaxosFaultFreeRunCompletesAllRequests) {
  Schedule schedule;
  schedule.protocol = Protocol::kXPaxos;
  schedule.n = 5;
  schedule.f = 2;
  schedule.requests = 12;
  schedule.quiet_start = 2000 * kMs;
  const RunResult result = run_schedule(schedule);
  EXPECT_TRUE(result.report.ok()) << result.report.to_string();
  EXPECT_EQ(result.observations.completed_requests, 12u);
}

}  // namespace
}  // namespace qsel::scenario
