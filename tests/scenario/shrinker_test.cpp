// ScheduleShrinker tests — the ISSUE acceptance criterion: an
// intentionally injected agreement bug (TestBug::kStuckQuorum) must be
// caught by the oracles and delta-debugged down to a reproducer of at
// most 5 fault actions, with validity (healed partitions, culprit budget)
// preserved at every step.
#include "scenario/shrinker.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace qsel::scenario {
namespace {

constexpr SimDuration kMs = 1'000'000;

OracleReport buggy_probe(const Schedule& candidate) {
  RunOptions options;
  options.trace = false;  // digests are irrelevant while shrinking
  options.test_bug = TestBug::kStuckQuorum;
  return run_schedule(candidate, options).report;
}

TEST(ShrinkerTest, InjectedBugShrinksToAtMostFiveActions) {
  // A deliberately noisy schedule: link flaps and delays around the one
  // action that matters (crashing initial-quorum member p0 forces a
  // quorum change, which is what arms the injected bug).
  Schedule schedule;
  schedule.protocol = Protocol::kQuorumSelection;
  schedule.n = 4;
  schedule.f = 1;
  schedule.seed = 11;
  schedule.actions = {
      {20 * kMs, FaultKind::kLinkDelay, 0, 1, 5 * kMs},
      {30 * kMs, FaultKind::kLinkDown, 0, 2, 0},
      {55 * kMs, FaultKind::kLinkUp, 0, 2, 0},
      {70 * kMs, FaultKind::kLinkDelay, 0, 3, 8 * kMs},
      {90 * kMs, FaultKind::kCrash, 0, kNoProcess, 0},
      {110 * kMs, FaultKind::kLinkDelay, 0, 1, 2 * kMs},
  };
  ASSERT_EQ(schedule.validate(), std::nullopt);
  ASSERT_FALSE(buggy_probe(schedule).ok()) << "bug must manifest unshrunk";

  const ShrinkResult result = shrink_schedule(schedule, buggy_probe);

  EXPECT_LE(result.schedule.actions.size(), 5u);
  EXPECT_GE(result.schedule.actions.size(), 1u);
  EXPECT_EQ(result.schedule.validate(), std::nullopt);
  EXPECT_FALSE(result.report.ok());
  bool agreement = false;
  for (const Violation& violation : result.report.violations)
    agreement |= violation.oracle == "agreement";
  EXPECT_TRUE(agreement) << result.report.to_string();
  EXPECT_GT(result.runs, 1u);
  // The shrunk schedule is a self-contained reproducer.
  const auto parsed = Schedule::from_json(result.schedule.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, result.schedule);
  EXPECT_FALSE(buggy_probe(*parsed).ok());
}

TEST(ShrinkerTest, PartitionTravelsWithItsHeal) {
  // Force a failure that needs the partition: same injected bug, but the
  // only quorum-changing fault is a partition+heal pair. Whatever the
  // shrinker returns must still be valid, i.e. it can never keep the
  // partition while dropping the heal.
  Schedule schedule;
  schedule.protocol = Protocol::kQuorumSelection;
  schedule.n = 4;
  schedule.f = 1;
  schedule.seed = 5;
  schedule.actions = {
      {20 * kMs, FaultKind::kPartition, kNoProcess, kNoProcess, 0b0001},
      {120 * kMs, FaultKind::kHeal, kNoProcess, kNoProcess, 0},
  };
  schedule.quiet_start = 4620 * kMs;
  ASSERT_EQ(schedule.validate(), std::nullopt);
  if (buggy_probe(schedule).ok())
    GTEST_SKIP() << "partition did not force a quorum change on this seed";

  const ShrinkResult result = shrink_schedule(schedule, buggy_probe);
  EXPECT_EQ(result.schedule.validate(), std::nullopt);
  bool has_partition = false, has_heal = false;
  for (const FaultAction& action : result.schedule.actions) {
    has_partition |= action.kind == FaultKind::kPartition;
    has_heal |= action.kind == FaultKind::kHeal;
  }
  EXPECT_EQ(has_partition, has_heal);
}

TEST(ShrinkerTest, RequiresAFailingSchedule) {
  Schedule schedule;  // fault-free, passes every oracle
  schedule.quiet_start = 1000 * kMs;
  const ShrinkProbe honest_probe = [](const Schedule& candidate) {
    RunOptions options;
    options.trace = false;
    return run_schedule(candidate, options).report;
  };
  EXPECT_THROW(shrink_schedule(schedule, honest_probe),
               std::invalid_argument);
}

}  // namespace
}  // namespace qsel::scenario
