// PropertyOracle unit tests over synthetic Observations — each oracle is a
// pure function of (Schedule, Observations), so violations and, just as
// important, the soundness gates (attributability, partition-freedom) are
// checkable without running a simulation.
#include "scenario/oracle.hpp"

#include <algorithm>

#include <gtest/gtest.h>

namespace qsel::scenario {
namespace {

constexpr SimDuration kMs = 1'000'000;

Schedule qs_schedule() {
  Schedule schedule;
  schedule.protocol = Protocol::kQuorumSelection;
  schedule.n = 4;
  schedule.f = 1;
  return schedule;
}

/// A clean end state: everyone alive, agreeing on {0,1,2}, no suspicions.
Observations healthy(const Schedule& schedule) {
  Observations obs;
  for (ProcessId id = 0; id < schedule.n; ++id) {
    ProcessObservation po;
    po.id = id;
    po.alive = true;
    po.quorum = ProcessSet::range(
        0, static_cast<ProcessId>(static_cast<int>(schedule.n) - schedule.f));
    po.leader = 0;
    po.quorums_issued = 1;
    po.quorums_per_epoch = {{1, 1}};
    obs.processes.push_back(po);
  }
  obs.issued_at_quiet = schedule.n;
  obs.issued_at_end = schedule.n;
  return obs;
}

bool violated(const OracleReport& report, std::string_view oracle) {
  return std::any_of(
      report.violations.begin(), report.violations.end(),
      [&](const Violation& violation) { return violation.oracle == oracle; });
}

TEST(OracleTest, HealthyRunPasses) {
  const Schedule schedule = qs_schedule();
  EXPECT_TRUE(check_oracles(schedule, healthy(schedule)).ok());
}

TEST(OracleTest, QuorumIssuedInQuietWindowIsATerminationViolation) {
  const Schedule schedule = qs_schedule();
  Observations obs = healthy(schedule);
  obs.issued_at_end = obs.issued_at_quiet + 1;
  EXPECT_TRUE(violated(check_oracles(schedule, obs), "termination"));
}

TEST(OracleTest, DivergingQuorumsAreAnAgreementViolation) {
  const Schedule schedule = qs_schedule();
  Observations obs = healthy(schedule);
  obs.processes[2].quorum = ProcessSet{0, 1, 3};
  EXPECT_TRUE(violated(check_oracles(schedule, obs), "agreement"));
}

TEST(OracleTest, CrossEpochDivergenceIsNotAnAgreementViolation) {
  // Two correct processes can terminate at different epochs, each resting
  // on a valid independent set of its own epoch's graph (EXPERIMENTS.md
  // finding 8) — Algorithm 1 agreement is per-epoch, like views.
  const Schedule schedule = qs_schedule();
  Observations obs = healthy(schedule);
  obs.processes[2].epoch = 7;
  obs.processes[2].quorum = ProcessSet{0, 1, 3};
  EXPECT_TRUE(check_oracles(schedule, obs).ok());
}

TEST(OracleTest, FollowerSelectionAgreementIsGlobal) {
  // Algorithm 2 synchronizes through the leader's FOLLOWERS announcement,
  // so differing epochs exempt nothing there.
  Schedule schedule;
  schedule.protocol = Protocol::kFollowerSelection;
  schedule.n = 4;
  schedule.f = 1;
  Observations obs = healthy(schedule);
  obs.processes[2].epoch = 7;
  obs.processes[2].quorum = ProcessSet{0, 1, 3};
  EXPECT_TRUE(violated(check_oracles(schedule, obs), "agreement"));
}

TEST(OracleTest, WrongQuorumSizeIsAnAgreementViolation) {
  const Schedule schedule = qs_schedule();
  Observations obs = healthy(schedule);
  for (auto& process : obs.processes) process.quorum = ProcessSet{0, 1};
  EXPECT_TRUE(violated(check_oracles(schedule, obs), "agreement"));
}

TEST(OracleTest, DeadProcessesAreExemptFromAgreement) {
  const Schedule schedule = qs_schedule();
  Observations obs = healthy(schedule);
  obs.processes[2].alive = false;
  obs.processes[2].quorum = ProcessSet{0, 1, 3};  // stale view is fine: dead
  EXPECT_TRUE(check_oracles(schedule, obs).ok());
}

TEST(OracleTest, MemberSuspectingAMemberIsANoSuspicionViolation) {
  const Schedule schedule = qs_schedule();
  Observations obs = healthy(schedule);
  obs.processes[1].suspected = ProcessSet{2};  // both inside {0,1,2}
  EXPECT_TRUE(violated(check_oracles(schedule, obs), "no_suspicion"));
  // Suspecting a process outside the quorum is allowed.
  obs.processes[1].suspected = ProcessSet{3};
  EXPECT_TRUE(check_oracles(schedule, obs).ok());
}

TEST(OracleTest, FollowerSelectionChecksLeaderSuspicionsOnly) {
  Schedule schedule;
  schedule.protocol = Protocol::kFollowerSelection;
  schedule.n = 4;
  schedule.f = 1;
  Observations obs = healthy(schedule);
  // A follower suspecting a non-leader member is fine under Algorithm 2.
  obs.processes[1].suspected = ProcessSet{2};
  EXPECT_TRUE(check_oracles(schedule, obs).ok());
  // A follower suspecting the leader is not.
  obs.processes[1].suspected = ProcessSet{0};
  EXPECT_TRUE(violated(check_oracles(schedule, obs), "no_suspicion"));
  // Nor is the leader suspecting a member.
  obs.processes[1].suspected = ProcessSet{};
  obs.processes[0].suspected = ProcessSet{2};
  EXPECT_TRUE(violated(check_oracles(schedule, obs), "no_suspicion"));
}

TEST(OracleTest, LeaderOutsideQuorumIsAnAgreementViolation) {
  Schedule schedule;
  schedule.protocol = Protocol::kFollowerSelection;
  schedule.n = 4;
  schedule.f = 1;
  Observations obs = healthy(schedule);
  for (auto& process : obs.processes) process.leader = 3;  // not in {0,1,2}
  EXPECT_TRUE(violated(check_oracles(schedule, obs), "agreement"));
}

TEST(OracleTest, Theorem3BoundIsCheckedUnconditionally) {
  Schedule schedule = qs_schedule();
  // Even on a non-attributable schedule (partition), the f(f+1)+1 bound
  // applies to Algorithm 1: any within-epoch issuance needs a quorum to
  // exist, which bounds the suspicion structure regardless of who caused it.
  schedule.actions = {
      {20 * kMs, FaultKind::kPartition, kNoProcess, kNoProcess, 0b0001},
      {50 * kMs, FaultKind::kHeal, kNoProcess, kNoProcess, 0},
  };
  ASSERT_FALSE(schedule.attributable());
  Observations obs = healthy(schedule);
  const std::uint64_t bound =
      static_cast<std::uint64_t>(schedule.f * (schedule.f + 1) + 1);
  obs.processes[1].quorums_per_epoch = {{1, bound + 1}};
  obs.processes[1].quorums_issued = bound + 1;
  EXPECT_TRUE(violated(check_oracles(schedule, obs), "theorem3_bound"));
}

TEST(OracleTest, FollowerSelectionBoundsAreGatedOnAttributability) {
  Schedule schedule;
  schedule.protocol = Protocol::kFollowerSelection;
  schedule.n = 4;
  schedule.f = 1;
  Observations obs = healthy(schedule);
  obs.processes[1].quorums_per_epoch = {{1, 9}};  // over 3f+1 = 4
  obs.processes[1].quorums_issued = 9;            // over 6f+2 = 8

  // Attributable schedule: both bounds fire.
  ASSERT_TRUE(schedule.attributable());
  const OracleReport strict = check_oracles(schedule, obs);
  EXPECT_TRUE(violated(strict, "theorem9_bound"));
  EXPECT_TRUE(violated(strict, "corollary10_bound"));

  // Partitioned schedule: the premises fail, so the bounds must not fire.
  schedule.actions = {
      {20 * kMs, FaultKind::kPartition, kNoProcess, kNoProcess, 0b0001},
      {50 * kMs, FaultKind::kHeal, kNoProcess, kNoProcess, 0},
  };
  const OracleReport lenient = check_oracles(schedule, obs);
  EXPECT_FALSE(violated(lenient, "theorem9_bound"));
  EXPECT_FALSE(violated(lenient, "corollary10_bound"));
}

TEST(OracleTest, MatrixDivergenceIsACrdtViolationEvenAfterPartitions) {
  Schedule schedule = qs_schedule();
  Observations obs = healthy(schedule);
  suspect::SuspicionMatrix a(schedule.n), b(schedule.n);
  b.stamp(0, 3, 1);
  obs.processes[0].matrix = a;
  obs.processes[1].matrix = b;
  EXPECT_TRUE(violated(check_oracles(schedule, obs), "crdt_convergence"));

  // Same end state after a (healed) partition: still a violation — the
  // full-matrix anti-entropy resync makes dissemination epidemic, so a
  // heal-ed split is no excuse for diverged matrices (schedules where the
  // repair cannot run at all, partition + heartbeats disabled, are
  // rejected by Schedule::validate instead).
  schedule.actions = {
      {20 * kMs, FaultKind::kPartition, kNoProcess, kNoProcess, 0b0001},
      {50 * kMs, FaultKind::kHeal, kNoProcess, kNoProcess, 0},
  };
  EXPECT_TRUE(violated(check_oracles(schedule, obs), "crdt_convergence"));

  // Culprit processes are exempt: a fully-isolated sender can hold
  // private stamps nobody else ever saw.
  schedule.actions.clear();
  obs.processes[1].culprit = true;
  EXPECT_FALSE(violated(check_oracles(schedule, obs), "crdt_convergence"));
}

TEST(OracleTest, XPaxosHistoryDivergenceAndLiveness) {
  Schedule schedule;
  schedule.protocol = Protocol::kXPaxos;
  schedule.n = 4;
  schedule.f = 1;
  schedule.requests = 10;

  Observations obs;
  obs.histories_consistent = true;
  obs.completed_requests = 10;
  EXPECT_TRUE(check_oracles(schedule, obs).ok());

  obs.completed_requests = 7;
  EXPECT_TRUE(violated(check_oracles(schedule, obs), "liveness"));
  // With faults in play, incomplete requests are not a violation...
  schedule.actions = {{20 * kMs, FaultKind::kCrash, 0, kNoProcess, 0}};
  EXPECT_FALSE(violated(check_oracles(schedule, obs), "liveness"));
  // ...but diverging histories always are.
  obs.histories_consistent = false;
  EXPECT_TRUE(violated(check_oracles(schedule, obs), "history_consistency"));
}

}  // namespace
}  // namespace qsel::scenario
