// Delta gossip must be an encoding change, never a semantic one: a
// receiver fed DELTA-UPDATEs converges to the *byte-identical*
// SuspicionMatrix a receiver fed full-row UPDATEs reaches, under
// arbitrary reordering, duplication and (with digest repair) loss. The
// randomized cases mirror the fuzzer's delivery adversary at unit scale;
// seeds are fixed so failures replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include "suspect/delta_update_message.hpp"
#include "suspect/suspicion_core.hpp"
#include "suspect/update_message.hpp"

namespace qsel::suspect {
namespace {

constexpr ProcessId kN = 6;

/// One core plus capture of everything it broadcasts / sends.
struct Node {
  crypto::Signer signer;
  std::vector<sim::PayloadPtr> broadcasts;
  std::vector<std::pair<ProcessId, sim::PayloadPtr>> sends;
  SuspicionCore core;

  Node(const crypto::KeyRegistry& keys, ProcessId self, GossipMode mode)
      : signer(keys, self),
        core(signer, kN,
             SuspicionCore::Hooks{
                 [this](sim::PayloadPtr m) { broadcasts.push_back(m); },
                 [] { /* quorum evaluation not under test */ },
                 /*persist=*/{},
                 [this](ProcessId to, sim::PayloadPtr m) {
                   sends.emplace_back(to, m);
                 }},
             mode) {}
};

/// Feeds one captured payload into `node`, dispatching on runtime type the
/// way the runtimes do.
void deliver(Node& node, const sim::PayloadPtr& message) {
  if (auto update = std::dynamic_pointer_cast<const UpdateMessage>(message)) {
    node.core.on_update(update);
  } else if (auto delta =
                 std::dynamic_pointer_cast<const DeltaUpdateMessage>(message)) {
    node.core.on_delta(delta);
  } else if (auto digest =
                 std::dynamic_pointer_cast<const RowDigestMessage>(message)) {
    // Origin is irrelevant for state — repairs go to the from argument.
    node.core.on_row_digests(kN - 1, *digest);
  }
}

/// Applies the same randomized suspicion schedule to a fleet of origins in
/// `mode`, then delivers every broadcast to one fresh receiver in
/// `shuffled` order with duplicates. Returns the receiver.
std::unique_ptr<Node> run_schedule(const crypto::KeyRegistry& keys,
                                   GossipMode mode, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::unique_ptr<Node>> origins;
  for (ProcessId id = 0; id + 1 < kN; ++id)
    origins.push_back(std::make_unique<Node>(keys, id, mode));

  // Random suspicion bursts; epoch advances mixed in so stamps span
  // multiple epochs (re-stamping exercises multi-cell deltas).
  for (int step = 0; step < 60; ++step) {
    Node& origin = *origins[rng() % origins.size()];
    if (rng() % 8 == 0) {
      origin.core.advance_epoch(origin.core.epoch() + 1 + rng() % 2);
      continue;
    }
    ProcessSet suspects;
    const ProcessId victim = static_cast<ProcessId>(rng() % kN);
    if (victim != origin.core.self()) suspects.insert(victim);
    if (!suspects.empty()) origin.core.on_suspected(suspects);
  }

  // Collect every origin broadcast, duplicate a third of them, shuffle,
  // and deliver the lot to a fresh receiver (the last process id, which
  // never originated anything).
  std::vector<sim::PayloadPtr> traffic;
  for (const auto& origin : origins)
    for (const auto& m : origin->broadcasts) {
      traffic.push_back(m);
      if (rng() % 3 == 0) traffic.push_back(m);
    }
  std::shuffle(traffic.begin(), traffic.end(), rng);

  auto receiver = std::make_unique<Node>(keys, kN - 1, mode);
  for (const auto& m : traffic) deliver(*receiver, m);

  // Equivalence of the *origins'* own state too: fold each origin's rows
  // into the receiver via the anti-entropy path so the receiver ends with
  // the complete join regardless of mode. Full-row resync re-broadcasts
  // signed rows; delta resync broadcasts digests, which we bounce back so
  // origins push repairs.
  for (auto& origin : origins) {
    origin->broadcasts.clear();
    origin->core.resync();
    for (const auto& m : origin->broadcasts) {
      if (std::dynamic_pointer_cast<const RowDigestMessage>(m) != nullptr) {
        // A digest asks peers to push what the digester lacks; hand the
        // receiver's digest to the origin so it pushes the rows the
        // receiver is missing.
        origin->sends.clear();
        origin->core.on_row_digests(kN - 1,
                                    *receiver->core.make_digest_message());
        for (const auto& [to, repair] : origin->sends) deliver(*receiver, repair);
      } else {
        deliver(*receiver, m);
      }
    }
  }
  return receiver;
}

TEST(DeltaEquivalenceTest, ShuffledDuplicatedTrafficConvergesByteIdentical) {
  const crypto::KeyRegistry keys(kN, 11);
  for (std::uint64_t seed : {1u, 7u, 23u, 101u, 4242u}) {
    const auto full = run_schedule(keys, GossipMode::kFullRow, seed);
    const auto delta = run_schedule(keys, GossipMode::kDelta, seed);
    EXPECT_TRUE(full->core.matrix() == delta->core.matrix())
        << "matrices diverged between gossip modes at seed " << seed;
  }
}

TEST(DeltaEquivalenceTest, DeltaCarriesOnlyNewlyStampedCells) {
  const crypto::KeyRegistry keys(kN, 11);
  Node origin(keys, 0, GossipMode::kDelta);
  origin.core.on_suspected(ProcessSet{1});
  origin.core.on_suspected(ProcessSet{1, 2});  // only 2 is new

  ASSERT_EQ(origin.broadcasts.size(), 2u);
  const auto first =
      std::dynamic_pointer_cast<const DeltaUpdateMessage>(origin.broadcasts[0]);
  const auto second =
      std::dynamic_pointer_cast<const DeltaUpdateMessage>(origin.broadcasts[1]);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  ASSERT_EQ(first->cells.size(), 1u);
  EXPECT_EQ(first->cells[0].col, 1u);
  ASSERT_EQ(second->cells.size(), 1u);
  EXPECT_EQ(second->cells[0].col, 2u);
  EXPECT_GT(second->version, first->version);
}

TEST(DeltaEquivalenceTest, DeltasMergeOutOfOrderAndDuplicated) {
  const crypto::KeyRegistry keys(kN, 11);
  Node origin(keys, 0, GossipMode::kDelta);
  origin.core.on_suspected(ProcessSet{1});
  origin.core.on_suspected(ProcessSet{1, 2});
  origin.core.on_suspected(ProcessSet{1, 2, 3});
  ASSERT_EQ(origin.broadcasts.size(), 3u);

  Node receiver(keys, 1, GossipMode::kDelta);
  // Reverse order, with a duplicate in the middle.
  deliver(receiver, origin.broadcasts[2]);
  deliver(receiver, origin.broadcasts[1]);
  deliver(receiver, origin.broadcasts[2]);
  deliver(receiver, origin.broadcasts[0]);
  EXPECT_TRUE(std::equal(receiver.core.matrix().row(0).begin(),
                         receiver.core.matrix().row(0).end(),
                         origin.core.matrix().row(0).begin()));
}

TEST(DeltaEquivalenceTest, DigestRepairHealsALostDelta) {
  const crypto::KeyRegistry keys(kN, 11);
  Node origin(keys, 0, GossipMode::kDelta);
  Node receiver(keys, 1, GossipMode::kDelta);

  origin.core.on_suspected(ProcessSet{2});
  origin.core.on_suspected(ProcessSet{2, 3});
  ASSERT_EQ(origin.broadcasts.size(), 2u);
  deliver(receiver, origin.broadcasts[0]);  // second delta "lost"
  ASSERT_FALSE(std::equal(receiver.core.matrix().row(0).begin(),
                          receiver.core.matrix().row(0).end(),
                          origin.core.matrix().row(0).begin()));

  // Anti-entropy: receiver's digest reaches the origin, which pushes the
  // signed messages backing the divergent row, point to point.
  origin.sends.clear();
  origin.core.on_row_digests(/*from=*/1, *receiver.core.make_digest_message());
  ASSERT_FALSE(origin.sends.empty());
  for (const auto& [to, repair] : origin.sends) {
    EXPECT_EQ(to, 1u);
    deliver(receiver, repair);
  }
  EXPECT_TRUE(std::equal(receiver.core.matrix().row(0).begin(),
                         receiver.core.matrix().row(0).end(),
                         origin.core.matrix().row(0).begin()));
  EXPECT_GT(origin.core.repairs_sent(), 0u);
}

TEST(DeltaEquivalenceTest, MatchingDigestsProduceNoRepairTraffic) {
  const crypto::KeyRegistry keys(kN, 11);
  Node a(keys, 0, GossipMode::kDelta);
  Node b(keys, 1, GossipMode::kDelta);
  a.core.on_suspected(ProcessSet{2});
  ASSERT_EQ(a.broadcasts.size(), 1u);
  deliver(b, a.broadcasts[0]);

  a.sends.clear();
  a.core.on_row_digests(/*from=*/1, *b.core.make_digest_message());
  EXPECT_TRUE(a.sends.empty()) << "in-sync rows must not trigger repairs";
}

}  // namespace
}  // namespace qsel::suspect
