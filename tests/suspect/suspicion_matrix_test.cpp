#include "suspect/suspicion_matrix.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "graph/independent_set.hpp"

namespace qsel::suspect {
namespace {

TEST(SuspicionMatrixTest, InitiallyZero) {
  const SuspicionMatrix m(4);
  for (ProcessId l = 0; l < 4; ++l)
    for (ProcessId k = 0; k < 4; ++k) EXPECT_EQ(m.get(l, k), 0u);
}

TEST(SuspicionMatrixTest, StampIsMonotone) {
  SuspicionMatrix m(3);
  m.stamp(0, 1, 5);
  EXPECT_EQ(m.get(0, 1), 5u);
  m.stamp(0, 1, 3);  // lower stamp ignored
  EXPECT_EQ(m.get(0, 1), 5u);
  m.stamp(0, 1, 8);
  EXPECT_EQ(m.get(0, 1), 8u);
  EXPECT_EQ(m.get(1, 0), 0u);  // directed
}

TEST(SuspicionMatrixTest, MergeRowTakesMaxAndReportsChange) {
  SuspicionMatrix m(3);
  m.stamp(1, 0, 4);
  const std::vector<Epoch> row{2, 0, 7};
  EXPECT_TRUE(m.merge_row(1, row));
  EXPECT_EQ(m.get(1, 0), 4u);  // kept the larger local value
  EXPECT_EQ(m.get(1, 2), 7u);
  EXPECT_FALSE(m.merge_row(1, row));  // idempotent
}

// CRDT property: merge order does not matter (the convergence argument of
// Section VI-A, including equivocated updates).
TEST(SuspicionMatrixTest, MergeIsCommutativeAndAssociative) {
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    const ProcessId n = 5;
    std::vector<std::vector<Epoch>> rows;
    for (int i = 0; i < 6; ++i) {
      std::vector<Epoch> row(n);
      for (auto& cell : row) cell = rng.below(4);
      rows.push_back(std::move(row));
    }
    SuspicionMatrix forward(n);
    SuspicionMatrix backward(n);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      forward.merge_row(static_cast<ProcessId>(i % n), rows[i]);
      const std::size_t j = rows.size() - 1 - i;
      backward.merge_row(static_cast<ProcessId>(j % n), rows[j]);
    }
    EXPECT_EQ(forward, backward);
  }
}

TEST(SuspicionMatrixTest, SuspectGraphIsSymmetricInEitherDirection) {
  SuspicionMatrix m(4);
  m.stamp(0, 2, 3);  // only 0 suspects 2
  const auto g = m.build_suspect_graph(3);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_EQ(g.edge_count(), 1);
}

TEST(SuspicionMatrixTest, SuspectGraphFiltersByEpoch) {
  SuspicionMatrix m(4);
  m.stamp(0, 1, 2);
  m.stamp(2, 3, 5);
  EXPECT_EQ(m.build_suspect_graph(2).edge_count(), 2);
  EXPECT_EQ(m.build_suspect_graph(3).edge_count(), 1);
  EXPECT_TRUE(m.build_suspect_graph(3).has_edge(2, 3));
  EXPECT_EQ(m.build_suspect_graph(6).edge_count(), 0);
}

// The Figure 4 scenario end to end on the matrix.
TEST(SuspicionMatrixTest, Figure4EpochProgression) {
  SuspicionMatrix m(5);
  m.stamp(2, 3, 2);  // p3 suspected p4 in epoch 2
  m.stamp(0, 1, 3);  // p1-p2 in epoch 3
  m.stamp(0, 4, 3);  // p1-p5
  m.stamp(1, 4, 3);  // p2-p5
  EXPECT_FALSE(graph::has_independent_set(m.build_suspect_graph(2), 3));
  const auto g3 = m.build_suspect_graph(3);
  EXPECT_TRUE(graph::has_independent_set(g3, 3));
  EXPECT_EQ(graph::first_independent_set(g3, 3), (ProcessSet{0, 2, 3}));
}

TEST(SuspicionMatrixTest, RowVersionBumpsOnlyOnCellIncrease) {
  SuspicionMatrix m(4);
  EXPECT_EQ(m.row_version(1), 0u);
  m.stamp(1, 2, 3);
  const RowVersion v1 = m.row_version(1);
  EXPECT_GT(v1, 0u);
  m.stamp(1, 2, 2);  // lower stamp: ignored, no bump
  EXPECT_EQ(m.row_version(1), v1);
  m.stamp(1, 2, 3);  // equal stamp: no change, no bump
  EXPECT_EQ(m.row_version(1), v1);
  m.stamp(1, 2, 5);  // increase: bump
  EXPECT_GT(m.row_version(1), v1);
  EXPECT_EQ(m.row_version(0), 0u) << "other rows untouched";
}

TEST(SuspicionMatrixTest, MergeRowBumpsVersionOncePerChangedMerge) {
  SuspicionMatrix m(4);
  const Epoch row[] = {0, 0, 2, 2};
  EXPECT_TRUE(m.merge_row(0, row));
  const RowVersion after_first = m.row_version(0);
  EXPECT_FALSE(m.merge_row(0, row));  // duplicate: no change
  EXPECT_EQ(m.row_version(0), after_first);
}

TEST(SuspicionMatrixTest, ChangedListsCellsStampedSinceAVersion) {
  SuspicionMatrix m(4);
  EXPECT_TRUE(m.changed(2, 0).empty());
  m.stamp(2, 0, 1);
  const RowVersion v1 = m.row_version(2);
  m.stamp(2, 3, 1);
  // Since 0: everything nonzero, ascending columns.
  EXPECT_EQ(m.changed(2, 0), (std::vector<ProcessId>{0, 3}));
  // Since v1: only the cell stamped after the first write.
  EXPECT_EQ(m.changed(2, v1), (std::vector<ProcessId>{3}));
  // Re-stamping an old cell higher re-surfaces exactly that cell.
  const RowVersion v2 = m.row_version(2);
  m.stamp(2, 0, 4);
  EXPECT_EQ(m.changed(2, v2), (std::vector<ProcessId>{0}));
  EXPECT_TRUE(m.changed(2, m.row_version(2)).empty());
}

TEST(SuspicionMatrixTest, VersionsAreLocalOnlyAndExcludedFromEquality) {
  // Two matrices reaching identical cells along different merge paths
  // hold different version counters yet must compare equal: versions are
  // bookkeeping, not CRDT state.
  SuspicionMatrix a(3);
  SuspicionMatrix b(3);
  a.stamp(0, 1, 1);
  a.stamp(0, 1, 2);
  a.stamp(0, 2, 2);  // three increases
  b.merge_row(0, std::vector<Epoch>{0, 2, 2});  // one merge, same cells
  EXPECT_TRUE(a == b);
  EXPECT_NE(a.row_version(0), b.row_version(0));
}

TEST(SuspicionMatrixTest, MinLiveStamp) {
  SuspicionMatrix m(4);
  EXPECT_EQ(m.min_live_stamp(1), 0u);  // empty graph
  m.stamp(0, 1, 3);
  m.stamp(1, 2, 7);
  EXPECT_EQ(m.min_live_stamp(1), 3u);
  EXPECT_EQ(m.min_live_stamp(4), 7u);
  EXPECT_EQ(m.min_live_stamp(8), 0u);
}

}  // namespace
}  // namespace qsel::suspect
