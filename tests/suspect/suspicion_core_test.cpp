#include "suspect/suspicion_core.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace qsel::suspect {
namespace {

struct CoreFixture {
  crypto::KeyRegistry keys{4, 1};
  crypto::Signer signer;
  std::vector<sim::PayloadPtr> broadcasts;
  int quorum_updates = 0;
  SuspicionCore core;

  explicit CoreFixture(ProcessId self = 0)
      : signer(keys, self),
        core(signer, 4,
             SuspicionCore::Hooks{
                 [this](sim::PayloadPtr m) { broadcasts.push_back(m); },
                 [this] { ++quorum_updates; },
                 /*persist=*/{}}) {}

  std::shared_ptr<const UpdateMessage> last_update() const {
    return std::dynamic_pointer_cast<const UpdateMessage>(broadcasts.back());
  }
};

TEST(SuspicionCoreTest, InitialState) {
  CoreFixture fx;
  EXPECT_EQ(fx.core.epoch(), 1u);
  EXPECT_TRUE(fx.core.suspecting().empty());
  EXPECT_EQ(fx.core.current_graph().edge_count(), 0);
}

TEST(SuspicionCoreTest, OnSuspectedStampsBroadcastsAndUpdates) {
  CoreFixture fx;
  fx.core.on_suspected(ProcessSet{2});
  EXPECT_EQ(fx.core.matrix().get(0, 2), 1u);
  EXPECT_EQ(fx.core.suspecting(), ProcessSet{2});
  ASSERT_EQ(fx.broadcasts.size(), 1u);
  const auto update = fx.last_update();
  ASSERT_NE(update, nullptr);
  EXPECT_EQ(update->origin, 0u);
  EXPECT_EQ(update->row[2], 1u);
  EXPECT_EQ(fx.quorum_updates, 1);
  EXPECT_TRUE(fx.core.current_graph().has_edge(0, 2));
}

TEST(SuspicionCoreTest, SelfSuspicionRejected) {
  CoreFixture fx;
  EXPECT_THROW(fx.core.on_suspected(ProcessSet{0}), std::invalid_argument);
}

TEST(SuspicionCoreTest, ValidUpdateMergesForwardsAndEvaluates) {
  CoreFixture receiver(0);
  CoreFixture sender(1);
  sender.core.on_suspected(ProcessSet{3});
  const auto update = sender.last_update();
  EXPECT_TRUE(receiver.core.on_update(update));
  EXPECT_EQ(receiver.core.matrix().get(1, 3), 1u);
  ASSERT_EQ(receiver.broadcasts.size(), 1u);  // forwarded
  EXPECT_EQ(receiver.broadcasts[0].get(), update.get());
  EXPECT_EQ(receiver.quorum_updates, 1);
  EXPECT_EQ(receiver.core.updates_forwarded(), 1u);
}

TEST(SuspicionCoreTest, DuplicateUpdateNotForwarded) {
  CoreFixture receiver(0);
  CoreFixture sender(1);
  sender.core.on_suspected(ProcessSet{3});
  const auto update = sender.last_update();
  EXPECT_TRUE(receiver.core.on_update(update));
  EXPECT_FALSE(receiver.core.on_update(update));  // no change
  EXPECT_EQ(receiver.broadcasts.size(), 1u);
  EXPECT_EQ(receiver.quorum_updates, 1);
}

TEST(SuspicionCoreTest, BadSignatureRejected) {
  CoreFixture receiver(0);
  CoreFixture sender(1);
  sender.core.on_suspected(ProcessSet{3});
  auto tampered = std::make_shared<UpdateMessage>(*sender.last_update());
  tampered->row[2] = 7;  // inject an extra suspicion
  EXPECT_FALSE(receiver.core.on_update(tampered));
  EXPECT_EQ(receiver.core.matrix().get(1, 2), 0u);
  EXPECT_EQ(receiver.core.updates_rejected(), 1u);
  EXPECT_TRUE(receiver.broadcasts.empty());
}

TEST(SuspicionCoreTest, AdvanceEpochRestampsCurrentSuspicions) {
  CoreFixture fx;
  fx.core.on_suspected(ProcessSet{1, 2});
  fx.core.advance_epoch(2);
  EXPECT_EQ(fx.core.epoch(), 2u);
  EXPECT_EQ(fx.core.matrix().get(0, 1), 2u);
  EXPECT_EQ(fx.core.matrix().get(0, 2), 2u);
  EXPECT_EQ(fx.core.epoch_advances(), 1u);
  // The re-stamp is broadcast (Line 29 -> Line 15).
  EXPECT_EQ(fx.broadcasts.size(), 2u);
  EXPECT_THROW(fx.core.advance_epoch(2), std::invalid_argument);
}

TEST(SuspicionCoreTest, CancelledSuspicionStampSurvivesInEpoch) {
  CoreFixture fx;
  fx.core.on_suspected(ProcessSet{2});
  fx.core.on_suspected(ProcessSet{});  // suspicion cancelled
  EXPECT_TRUE(fx.core.suspecting().empty());
  // "Previously raised and cancelled" suspicions still count (Section I):
  EXPECT_TRUE(fx.core.current_graph().has_edge(0, 2));
  // ...until the epoch moves past them.
  fx.core.advance_epoch(2);
  EXPECT_FALSE(fx.core.current_graph().has_edge(0, 2));
}

TEST(SuspicionCoreTest, NextEpochCandidateSkipsIdenticalGraphs) {
  CoreFixture receiver(0);
  CoreFixture sender(1);
  // Sender's row claims a suspicion stamped far in the future (Byzantine
  // far-future stamp).
  sender.core.on_suspected(ProcessSet{2});
  auto far = std::make_shared<UpdateMessage>(*sender.last_update());
  far->row[3] = 1000;
  far->sig = crypto::Signer(receiver.keys, 1).sign(far->signed_bytes());
  EXPECT_TRUE(receiver.core.on_update(far));
  // Live stamps outside the own row: 1 (from row[2]) and 1000 (row[3]).
  EXPECT_EQ(receiver.core.next_epoch_candidate(), 2u);
  receiver.core.advance_epoch(2);
  // Now only the stamp at 1000 is live: jump straight past it.
  EXPECT_EQ(receiver.core.next_epoch_candidate(), 1001u);
}

TEST(SuspicionCoreTest, EquivocatedUpdatesConvergeViaMaxMerge) {
  // A faulty process sends different rows to different peers; forwarding
  // makes correct peers converge to the join of both rows.
  CoreFixture a(0);
  CoreFixture b(2);
  crypto::Signer faulty(a.keys, 1);
  const auto to_a = UpdateMessage::make(faulty, {5, 0, 0, 0});
  const auto to_b = UpdateMessage::make(faulty, {0, 0, 0, 5});
  a.core.on_update(to_a);
  b.core.on_update(to_b);
  // Forwarding crosses over.
  a.core.on_update(to_b);
  b.core.on_update(to_a);
  EXPECT_EQ(a.core.matrix(), b.core.matrix());
  EXPECT_EQ(a.core.matrix().get(1, 0), 5u);
  EXPECT_EQ(a.core.matrix().get(1, 3), 5u);
}

}  // namespace
}  // namespace qsel::suspect
