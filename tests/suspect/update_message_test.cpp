#include "suspect/update_message.hpp"

#include <gtest/gtest.h>

namespace qsel::suspect {
namespace {

TEST(UpdateMessageTest, MakeAndVerify) {
  const crypto::KeyRegistry keys(4, 1);
  const crypto::Signer signer(keys, 2);
  const auto msg = UpdateMessage::make(signer, {0, 1, 0, 3});
  EXPECT_EQ(msg->origin, 2u);
  EXPECT_EQ(msg->type_tag(), "suspect.update");
  const crypto::Signer verifier(keys, 0);
  EXPECT_TRUE(msg->verify(verifier, 4));
}

TEST(UpdateMessageTest, TamperedRowFails) {
  const crypto::KeyRegistry keys(4, 1);
  const crypto::Signer signer(keys, 2);
  auto msg = UpdateMessage::make(signer, {0, 1, 0, 3});
  auto tampered = std::make_shared<UpdateMessage>(*msg);
  tampered->row[0] = 99;
  EXPECT_FALSE(tampered->verify(signer, 4));
}

TEST(UpdateMessageTest, ForgedOriginFails) {
  const crypto::KeyRegistry keys(4, 1);
  const crypto::Signer byzantine(keys, 3);
  auto msg = UpdateMessage::make(byzantine, {0, 0, 0, 1});
  auto forged = std::make_shared<UpdateMessage>(*msg);
  forged->origin = 1;  // claim to be process 1
  EXPECT_FALSE(forged->verify(byzantine, 4));
}

TEST(UpdateMessageTest, WrongRowWidthRejected) {
  const crypto::KeyRegistry keys(4, 1);
  const crypto::Signer signer(keys, 0);
  const auto short_row = UpdateMessage::make(signer, {1, 2});
  EXPECT_FALSE(short_row->verify(signer, 4));
  const auto long_row = UpdateMessage::make(signer, {1, 2, 3, 4, 5});
  EXPECT_FALSE(long_row->verify(signer, 4));
}

TEST(UpdateMessageTest, OutOfRangeOriginRejected) {
  const crypto::KeyRegistry keys(8, 1);
  const crypto::Signer signer(keys, 7);
  const auto msg = UpdateMessage::make(signer, {0, 0, 0, 0});
  EXPECT_FALSE(msg->verify(signer, 4));  // origin 7 >= n=4
}

TEST(UpdateMessageTest, WireSizeTracksRow) {
  const crypto::KeyRegistry keys(4, 1);
  const crypto::Signer signer(keys, 0);
  const auto msg = UpdateMessage::make(signer, {0, 0, 0, 0});
  EXPECT_EQ(msg->wire_size(), 4u + 32u + 36u);
}

}  // namespace
}  // namespace qsel::suspect
