// Randomized semilattice-property tests for the SuspicionMatrix CRDT
// (Section VI-A): entry-wise max-merge must be commutative, associative
// and idempotent, so correct processes converge to the same matrix
// whatever order (and however often) rows are delivered in — including
// equivocated variants of the same author's row.
#include "suspect/suspicion_matrix.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace qsel::suspect {
namespace {

struct RowDelivery {
  ProcessId author;
  std::vector<Epoch> row;
};

std::vector<RowDelivery> random_deliveries(Rng& rng, ProcessId n, int count) {
  std::vector<RowDelivery> deliveries;
  for (int i = 0; i < count; ++i) {
    RowDelivery delivery;
    delivery.author = static_cast<ProcessId>(rng.below(n));
    delivery.row.resize(n);
    for (Epoch& cell : delivery.row)
      cell = rng.chance(0.4) ? rng.between(1, 6) : 0;
    deliveries.push_back(std::move(delivery));
  }
  return deliveries;
}

SuspicionMatrix apply(ProcessId n, const std::vector<RowDelivery>& deliveries,
                      const std::vector<std::size_t>& order) {
  SuspicionMatrix matrix(n);
  for (std::size_t index : order)
    matrix.merge_row(deliveries[index].author, deliveries[index].row);
  return matrix;
}

TEST(SuspicionMatrixPropertyTest, MergeOrderIsIrrelevant) {
  Rng rng(2024);
  for (int round = 0; round < 50; ++round) {
    const ProcessId n = static_cast<ProcessId>(rng.between(3, 10));
    const auto deliveries =
        random_deliveries(rng, n, static_cast<int>(rng.between(1, 12)));
    std::vector<std::size_t> order(deliveries.size());
    std::iota(order.begin(), order.end(), 0);
    const SuspicionMatrix reference = apply(n, deliveries, order);
    for (int shuffle = 0; shuffle < 5; ++shuffle) {
      std::shuffle(order.begin(), order.end(), rng);
      EXPECT_EQ(apply(n, deliveries, order), reference)
          << "round " << round << " shuffle " << shuffle;
    }
  }
}

TEST(SuspicionMatrixPropertyTest, MergeIsIdempotent) {
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    const ProcessId n = static_cast<ProcessId>(rng.between(3, 10));
    const auto deliveries =
        random_deliveries(rng, n, static_cast<int>(rng.between(1, 10)));
    std::vector<std::size_t> once(deliveries.size());
    std::iota(once.begin(), once.end(), 0);
    // Duplicate every delivery a random number of times.
    std::vector<std::size_t> duplicated;
    for (std::size_t index : once)
      for (std::uint64_t copy = rng.between(1, 4); copy > 0; --copy)
        duplicated.push_back(index);
    std::shuffle(duplicated.begin(), duplicated.end(), rng);
    EXPECT_EQ(apply(n, deliveries, duplicated), apply(n, deliveries, once));
  }
}

TEST(SuspicionMatrixPropertyTest, MergeIsAssociativeAcrossGroupings) {
  // Merging whole intermediate matrices row-by-row must equal merging the
  // underlying deliveries directly, for any split point: (A ⊔ B) ⊔ C has
  // to equal A ⊔ (B ⊔ C) because both are the join of all rows.
  Rng rng(99);
  for (int round = 0; round < 30; ++round) {
    const ProcessId n = static_cast<ProcessId>(rng.between(3, 8));
    const auto deliveries = random_deliveries(rng, n, 9);

    const auto merge_into = [n](SuspicionMatrix& into,
                                const SuspicionMatrix& from) {
      for (ProcessId row = 0; row < n; ++row)
        into.merge_row(row, from.row(row));
    };
    const auto of_range = [&](std::size_t lo, std::size_t hi) {
      SuspicionMatrix matrix(n);
      for (std::size_t i = lo; i < hi; ++i)
        matrix.merge_row(deliveries[i].author, deliveries[i].row);
      return matrix;
    };

    std::vector<std::size_t> all(deliveries.size());
    std::iota(all.begin(), all.end(), 0);
    const SuspicionMatrix flat = apply(n, deliveries, all);

    // ((A ⊔ B) ⊔ C)
    SuspicionMatrix left = of_range(0, 3);
    merge_into(left, of_range(3, 6));
    merge_into(left, of_range(6, 9));
    // (A ⊔ (B ⊔ C))
    SuspicionMatrix tail = of_range(3, 6);
    merge_into(tail, of_range(6, 9));
    SuspicionMatrix right = of_range(0, 3);
    merge_into(right, tail);

    EXPECT_EQ(left, flat);
    EXPECT_EQ(right, flat);
  }
}

TEST(SuspicionMatrixPropertyTest, EquivocatedRowsConvergeToTheirJoin) {
  // A Byzantine author sends different rows to different peers; once the
  // peers exchange what they saw, everyone holds the entry-wise max.
  const ProcessId n = 4;
  const std::vector<Epoch> to_peer_a{0, 3, 0, 1};
  const std::vector<Epoch> to_peer_b{2, 1, 0, 4};

  SuspicionMatrix peer_a(n), peer_b(n);
  peer_a.merge_row(0, to_peer_a);
  peer_b.merge_row(0, to_peer_b);
  // Gossip both directions.
  peer_a.merge_row(0, peer_b.row(0));
  peer_b.merge_row(0, peer_a.row(0));

  EXPECT_EQ(peer_a, peer_b);
  const std::vector<Epoch> expected{2, 3, 0, 4};
  for (ProcessId k = 0; k < n; ++k) EXPECT_EQ(peer_a.get(0, k), expected[k]);
}

TEST(SuspicionMatrixPropertyTest, StampsAreMonotone) {
  SuspicionMatrix matrix(3);
  matrix.stamp(1, 2, 5);
  matrix.stamp(1, 2, 3);  // lower stamp must be ignored
  EXPECT_EQ(matrix.get(1, 2), 5u);
  EXPECT_FALSE(matrix.merge_row(1, std::vector<Epoch>{0, 0, 4}));
  EXPECT_TRUE(matrix.merge_row(1, std::vector<Epoch>{0, 0, 6}));
  EXPECT_EQ(matrix.get(1, 2), 6u);
}

}  // namespace
}  // namespace qsel::suspect
