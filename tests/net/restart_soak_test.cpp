// Kill/restart soak — the crash-recovery durability loop run until it
// hurts: a 5-node f=1 authenticated cluster over real TCP with per-node
// FileNodeStores, killed and revived for QSEL_SOAK_CYCLES (default 6)
// cycles with rotating victims. Each cycle must re-establish agreement,
// and no rejoiner may ever come back below its pre-crash epoch — the WAL
// recovery invariant under repeated, back-to-back restarts rather than
// the single staged one of the tier-1 test. Labelled `long`; tools/ci.sh
// runs it under ASan/UBSan as its own gate.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "net/loopback_cluster.hpp"

namespace qsel::net {
namespace {

constexpr std::uint64_t kMs = 1'000'000;

std::uint64_t soak_cycles() {
  if (const char* env = std::getenv("QSEL_SOAK_CYCLES")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::uint64_t>(parsed);
  }
  return 6;  // >= 5, per the CI gate's contract
}

TEST(RestartSoakTest, RepeatedKillRestartCyclesKeepDurabilityAndAgreement) {
  const std::string store_root = testing::TempDir() + "qsel_restart_soak";
  std::filesystem::remove_all(store_root);
  std::filesystem::create_directories(store_root);

  LoopbackClusterConfig config;
  config.n = 5;
  config.f = 1;
  config.seed = 77;
  config.auth_key = std::vector<std::uint8_t>(32, 0x5C);
  config.store_root = store_root;
  LoopbackCluster cluster(config);
  ASSERT_TRUE(cluster.start());
  ASSERT_TRUE(cluster.run_until(
      [&] { return cluster.converged() && !cluster.agreement_error(); },
      60'000 * kMs));

  std::vector<Epoch> floor(config.n, 0);  // per-node durable epoch floor
  const std::uint64_t cycles = soak_cycles();
  for (std::uint64_t cycle = 0; cycle < cycles; ++cycle) {
    const ProcessId victim =
        static_cast<ProcessId>((cycle * 2 + 1) % config.n);
    floor[victim] = cluster.process(victim).selector().epoch();

    cluster.crash(victim);
    ASSERT_TRUE(cluster.run_until(
        [&] {
          if (!cluster.converged() || cluster.agreement_error()) return false;
          for (ProcessId id : cluster.alive())
            if (cluster.process(id).quorum().contains(victim)) return false;
          return true;
        },
        180'000 * kMs))
        << "cycle " << cycle << ": survivors never excluded p" << victim;

    cluster.restart(victim);
    EXPECT_GE(cluster.process(victim).selector().epoch(), floor[victim])
        << "cycle " << cycle << ": p" << victim
        << " regressed its epoch across restart";

    ASSERT_TRUE(cluster.run_until(
        [&] { return cluster.converged() && !cluster.agreement_error(); },
        180'000 * kMs))
        << "cycle " << cycle << ": no re-convergence after restarting p"
        << victim << "; agreement: "
        << cluster.agreement_error().value_or("consistent");
  }

  // End state: everyone alive, agreed, and nobody below any floor ever
  // observed for them.
  EXPECT_EQ(cluster.alive(), ProcessSet::full(config.n));
  EXPECT_EQ(cluster.agreement_error(), std::nullopt);
  for (ProcessId id = 0; id < config.n; ++id)
    EXPECT_GE(cluster.process(id).selector().epoch(), floor[id]);
}

}  // namespace
}  // namespace qsel::net
