// Loopback resilience — authenticated channels and crash-recovery over
// real TCP, the two live-node hardening layers exercised together.
//
// The corruption test is the payoff of channel auth: a link that flips
// bits (TamperConfig::corrupt_rate) must surface as detected drops plus
// quarantine offenses, never as wrong messages, and the cluster must
// still converge once the link behaves — with the offenders redeemed.
//
// The restart-chaos test is the payoff of the WAL: kill nodes mid-run,
// restart them from their FileNodeStores, and require that every rejoiner
// comes back at no less than its pre-crash epoch (durability), that the
// cluster re-converges after every cycle (liveness), and that agreement
// never breaks along the way (safety).
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "net/loopback_cluster.hpp"

namespace qsel::net {
namespace {

constexpr std::uint64_t kMs = 1'000'000;

std::vector<std::uint8_t> test_key() {
  return std::vector<std::uint8_t>(32, 0xA7);
}

TEST(LoopbackResilienceTest, AuthenticatedCleanClusterConverges) {
  LoopbackClusterConfig config;
  config.n = 4;
  config.f = 1;
  config.seed = 21;
  config.auth_key = test_key();
  LoopbackCluster cluster(config);
  ASSERT_TRUE(cluster.start());
  ASSERT_TRUE(cluster.run_until(
      [&] { return cluster.converged() && !cluster.agreement_error(); },
      20'000 * kMs));
  for (ProcessId id = 0; id < config.n; ++id) {
    EXPECT_TRUE(cluster.transport(id).auth_enabled());
    ASSERT_NE(cluster.transport(id).quarantine(), nullptr);
    // A clean network must not manufacture offenses.
    EXPECT_EQ(cluster.transport(id).quarantine()->offenses_total(), 0u);
  }
}

TEST(LoopbackResilienceTest, CorruptingLinkIsContainedAndForgiven) {
  LoopbackClusterConfig config;
  config.n = 4;
  config.f = 1;
  config.seed = 23;
  config.auth_key = test_key();
  config.tamper.corrupt_rate = 0.05;
  LoopbackCluster cluster(config);
  ASSERT_TRUE(cluster.start());

  // Run long enough under corruption for flips and offenses to land.
  std::uint64_t corrupted = 0;
  ASSERT_TRUE(cluster.run_until(
      [&] {
        corrupted = 0;
        for (ProcessId id = 0; id < config.n; ++id)
          corrupted += cluster.tamper(id).frames_corrupted();
        return corrupted >= 10;
      },
      60'000 * kMs));

  // Every flip must have been *detected*: offenses filed, never a wrong
  // message accepted. Detected flips close connections, so frames in
  // flight are legitimately lost and views may diverge for a few rounds —
  // what auth owes us is that agreement is *re-established* while the
  // corruption continues (a detected-and-dropped frame is just a lossy
  // link), not that it holds at every sampled instant.
  std::uint64_t offenses = 0;
  for (ProcessId id = 0; id < config.n; ++id)
    offenses += cluster.transport(id).quarantine()->offenses_total();
  EXPECT_GT(offenses, 0u);
  EXPECT_TRUE(cluster.run_until(
      [&] { return cluster.agreement_error() == std::nullopt; },
      60'000 * kMs))
      << "agreement never re-established under contained corruption: "
      << cluster.agreement_error().value_or("");

  // The link heals; the cluster must converge and redeem the offenders
  // (strikes forgiven after a clean streak) rather than bar them forever.
  for (ProcessId id = 0; id < config.n; ++id)
    cluster.tamper(id).set_tamper_enabled(false);
  ASSERT_TRUE(cluster.run_until(
      [&] { return cluster.converged() && !cluster.agreement_error(); },
      120'000 * kMs));
  ASSERT_TRUE(cluster.run_until(
      [&] {
        for (ProcessId id = 0; id < config.n; ++id)
          for (ProcessId peer = 0; peer < config.n; ++peer)
            if (cluster.transport(id).quarantine()->strikes(peer) != 0)
              return false;
        return true;
      },
      120'000 * kMs))
      << "quarantine strikes never redeemed after the link healed";
}

TEST(LoopbackResilienceTest, RestartChaosRecoversFromWalWithoutRegressing) {
  const std::string store_root =
      testing::TempDir() + "qsel_loopback_restart_chaos";
  std::filesystem::remove_all(store_root);
  std::filesystem::create_directories(store_root);

  LoopbackClusterConfig config;
  config.n = 5;
  config.f = 1;
  config.seed = 31;
  config.auth_key = test_key();
  config.store_root = store_root;
  LoopbackCluster cluster(config);
  ASSERT_TRUE(cluster.start());
  ASSERT_TRUE(cluster.run_until(
      [&] { return cluster.converged() && !cluster.agreement_error(); },
      20'000 * kMs));

  const ProcessId victims[] = {1, 3, 1};  // node 1 dies twice: idempotence
  for (const ProcessId victim : victims) {
    const Epoch epoch_before =
        cluster.process(victim).selector().epoch();

    cluster.crash(victim);
    // Survivors must notice and agree on a quorum without the victim.
    ASSERT_TRUE(cluster.run_until(
        [&] {
          if (!cluster.converged() || cluster.agreement_error()) return false;
          for (ProcessId id : cluster.alive())
            if (cluster.process(id).quorum().contains(victim)) return false;
          return true;
        },
        180'000 * kMs))
        << "survivors never excluded crashed p" << victim;

    cluster.restart(victim);
    // Durability: straight out of recovery — before any peer gossip can
    // have arrived — the rejoiner holds at least its pre-crash epoch.
    EXPECT_GE(cluster.process(victim).selector().epoch(), epoch_before)
        << "p" << victim << " regressed its epoch across restart";

    ASSERT_TRUE(cluster.run_until(
        [&] { return cluster.converged() && !cluster.agreement_error(); },
        180'000 * kMs))
        << "cluster never re-converged after restarting p" << victim;
    EXPECT_TRUE(cluster.alive().contains(victim));
  }

  // The WAL files are really there — recovery above came from disk.
  for (ProcessId id = 0; id < config.n; ++id)
    EXPECT_TRUE(std::filesystem::exists(store_root + "/node" +
                                        std::to_string(id) + "/wal.bin"));
  EXPECT_EQ(cluster.agreement_error(), std::nullopt);
}

}  // namespace
}  // namespace qsel::net
