// EventLoop + TcpTransport tests on real loopback sockets: timers fire on
// wall-clock time, whole messages survive the trip (including forced
// partial writes), tampering drops/duplicates frames, and outgoing
// connections reconnect with backoff after a peer restart.
//
// Real time makes "nothing arrives" assertions inherently heuristic; the
// tests only assert negatively where the transport is deterministic (a
// dropped frame is never written at all).
#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <functional>
#include <memory>
#include <vector>

#include "crypto/signer.hpp"
#include "net/event_loop.hpp"
#include "runtime/heartbeat.hpp"
#include "suspect/update_message.hpp"

namespace qsel::net {
namespace {

constexpr std::uint64_t kMs = 1'000'000;

/// Pumps `loop` until `pred` holds; false on timeout.
bool pump_until(EventLoop& loop, const std::function<bool()>& pred,
                std::uint64_t timeout_ns) {
  const std::uint64_t deadline = loop.now_ns() + timeout_ns;
  while (!pred()) {
    if (loop.now_ns() >= deadline) return false;
    loop.poll_once(kMs);
  }
  return true;
}

TEST(EventLoopTest, TimersFireOnRealTimeInOrder) {
  EventLoop loop;
  std::vector<int> fired;
  loop.timers().schedule_after(8 * kMs, [&] { fired.push_back(2); });
  loop.timers().schedule_after(2 * kMs, [&] { fired.push_back(1); });
  EXPECT_TRUE(
      pump_until(loop, [&] { return fired.size() == 2; }, 2'000 * kMs));
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_GE(loop.now_ns(), 8 * kMs);  // 8ms of real time really elapsed
}

TEST(EventLoopTest, RunForAdvancesClock) {
  EventLoop loop;
  const std::uint64_t before = loop.now_ns();
  loop.run_for(5 * kMs);
  EXPECT_GE(loop.now_ns() - before, 5 * kMs);
}

TcpTransport::Config transport_config(ProcessId self, ProcessId n,
                                      std::uint16_t port) {
  TcpTransport::Config config;
  config.self = self;
  config.n = n;
  config.listen_port = port;
  return config;
}

/// Two transports on one loop, wired to each other.
struct Pair {
  explicit Pair(EventLoop& loop, std::uint16_t port_a = 0,
                std::uint16_t port_b = 0)
      : keys(2, 1),
        a(std::make_unique<TcpTransport>(loop, transport_config(0, 2, port_a))),
        b(std::make_unique<TcpTransport>(loop, transport_config(1, 2, port_b))) {
    wire();
  }

  void wire() {
    a->set_peer(1, b->listen_port());
    b->set_peer(0, a->listen_port());
    a->set_handler([this](ProcessId from, const sim::PayloadPtr& message) {
      received_by_a.emplace_back(from, message);
    });
    b->set_handler([this](ProcessId from, const sim::PayloadPtr& message) {
      received_by_b.emplace_back(from, message);
    });
    a->start();
    b->start();
  }

  crypto::KeyRegistry keys;
  std::unique_ptr<TcpTransport> a;
  std::unique_ptr<TcpTransport> b;
  std::vector<std::pair<ProcessId, sim::PayloadPtr>> received_by_a;
  std::vector<std::pair<ProcessId, sim::PayloadPtr>> received_by_b;
};

TEST(TcpTransportTest, SendsWholeMessagesBothWays) {
  EventLoop loop;
  Pair pair(loop);
  ASSERT_TRUE(pump_until(
      loop,
      [&] { return pair.a->connected_to(1) && pair.b->connected_to(0); },
      2'000 * kMs));

  const crypto::Signer signer_a(pair.keys, 0);
  const crypto::Signer signer_b(pair.keys, 1);
  pair.a->send(1, runtime::HeartbeatMessage::make(signer_a, 7));
  pair.b->send(0, suspect::UpdateMessage::make(
                      signer_b, std::vector<Epoch>{0, 3}));

  ASSERT_TRUE(pump_until(
      loop,
      [&] {
        return pair.received_by_b.size() == 1 &&
               pair.received_by_a.size() == 1;
      },
      2'000 * kMs));

  EXPECT_EQ(pair.received_by_b[0].first, 0u);
  const auto* heartbeat = dynamic_cast<const runtime::HeartbeatMessage*>(
      pair.received_by_b[0].second.get());
  ASSERT_NE(heartbeat, nullptr);
  EXPECT_EQ(heartbeat->seq, 7u);
  EXPECT_TRUE(heartbeat->verify(signer_b, 2));

  EXPECT_EQ(pair.received_by_a[0].first, 1u);
  const auto* update = dynamic_cast<const suspect::UpdateMessage*>(
      pair.received_by_a[0].second.get());
  ASSERT_NE(update, nullptr);
  EXPECT_EQ(update->row, (std::vector<Epoch>{0, 3}));
  EXPECT_TRUE(update->verify(signer_a, 2));
}

TEST(TcpTransportTest, SelfSendDeliversLocally) {
  EventLoop loop;
  Pair pair(loop);
  const crypto::Signer signer(pair.keys, 0);
  pair.a->send(0, runtime::HeartbeatMessage::make(signer, 1));
  ASSERT_TRUE(pump_until(
      loop, [&] { return pair.received_by_a.size() == 1; }, 1'000 * kMs));
  EXPECT_EQ(pair.received_by_a[0].first, 0u);
}

TEST(TcpTransportTest, SplitWritesReassembleIntoWholeFrames) {
  EventLoop loop;
  Pair pair(loop);
  // Cap every first write syscall at one byte: the receiver must see the
  // length prefix and body dribble in across poll rounds.
  pair.a->set_write_tamper([](ProcessId, std::size_t) {
    TamperPlan plan;
    plan.split_at = 1;
    return plan;
  });
  ASSERT_TRUE(pump_until(
      loop, [&] { return pair.a->connected_to(1); }, 2'000 * kMs));

  const crypto::Signer signer(pair.keys, 0);
  constexpr std::uint64_t kCount = 8;
  for (std::uint64_t seq = 0; seq < kCount; ++seq)
    pair.a->send(1, runtime::HeartbeatMessage::make(signer, seq));

  ASSERT_TRUE(pump_until(
      loop, [&] { return pair.received_by_b.size() == kCount; },
      5'000 * kMs));
  for (std::uint64_t seq = 0; seq < kCount; ++seq) {
    const auto* heartbeat = dynamic_cast<const runtime::HeartbeatMessage*>(
        pair.received_by_b[seq].second.get());
    ASSERT_NE(heartbeat, nullptr);
    EXPECT_EQ(heartbeat->seq, seq);  // TCP keeps per-direction order
    EXPECT_TRUE(heartbeat->verify(signer, 2));
  }
}

TEST(TcpTransportTest, DropTamperSuppressesFrames) {
  EventLoop loop;
  Pair pair(loop);
  ASSERT_TRUE(pump_until(
      loop, [&] { return pair.a->connected_to(1); }, 2'000 * kMs));

  pair.a->set_write_tamper([](ProcessId, std::size_t) {
    TamperPlan plan;
    plan.drop = true;
    return plan;
  });
  const crypto::Signer signer(pair.keys, 0);
  pair.a->send(1, runtime::HeartbeatMessage::make(signer, 1));
  loop.run_for(50 * kMs);
  EXPECT_TRUE(pair.received_by_b.empty());

  // Lifting the tamper restores delivery on the same connection.
  pair.a->set_write_tamper({});
  pair.a->send(1, runtime::HeartbeatMessage::make(signer, 2));
  ASSERT_TRUE(pump_until(
      loop, [&] { return pair.received_by_b.size() == 1; }, 2'000 * kMs));
  const auto* heartbeat = dynamic_cast<const runtime::HeartbeatMessage*>(
      pair.received_by_b[0].second.get());
  ASSERT_NE(heartbeat, nullptr);
  EXPECT_EQ(heartbeat->seq, 2u);
}

TEST(TcpTransportTest, DuplicateTamperDeliversTwice) {
  EventLoop loop;
  Pair pair(loop);
  ASSERT_TRUE(pump_until(
      loop, [&] { return pair.a->connected_to(1); }, 2'000 * kMs));

  pair.a->set_write_tamper([](ProcessId, std::size_t) {
    TamperPlan plan;
    plan.duplicate = true;
    return plan;
  });
  const crypto::Signer signer(pair.keys, 0);
  pair.a->send(1, runtime::HeartbeatMessage::make(signer, 5));
  ASSERT_TRUE(pump_until(
      loop, [&] { return pair.received_by_b.size() == 2; }, 2'000 * kMs));
  for (const auto& [from, message] : pair.received_by_b) {
    const auto* heartbeat =
        dynamic_cast<const runtime::HeartbeatMessage*>(message.get());
    ASSERT_NE(heartbeat, nullptr);
    EXPECT_EQ(heartbeat->seq, 5u);
  }
}

TEST(TcpTransportTest, ReconnectsAfterPeerRestart) {
  EventLoop loop;
  Pair pair(loop);
  ASSERT_TRUE(pump_until(
      loop, [&] { return pair.a->connected_to(1); }, 2'000 * kMs));
  const std::uint16_t port_b = pair.b->listen_port();

  // Kill b. a's outgoing connection dies; reconnects hit a dead port and
  // back off.
  pair.b.reset();
  ASSERT_TRUE(pump_until(
      loop, [&] { return !pair.a->connected_to(1); }, 2'000 * kMs));

  // Restart b on the same port (SO_REUSEADDR): a's backoff loop must find
  // it without any help and deliver a fresh send.
  pair.b = std::make_unique<TcpTransport>(loop,
                                          transport_config(1, 2, port_b));
  ASSERT_EQ(pair.b->listen_port(), port_b);
  pair.b->set_peer(0, pair.a->listen_port());
  pair.b->set_handler([&](ProcessId from, const sim::PayloadPtr& message) {
    pair.received_by_b.emplace_back(from, message);
  });
  pair.b->start();

  ASSERT_TRUE(pump_until(
      loop, [&] { return pair.a->connected_to(1); }, 10'000 * kMs));
  const crypto::Signer signer(pair.keys, 0);
  pair.a->send(1, runtime::HeartbeatMessage::make(signer, 9));
  ASSERT_TRUE(pump_until(
      loop, [&] { return !pair.received_by_b.empty(); }, 2'000 * kMs));
  const auto* heartbeat = dynamic_cast<const runtime::HeartbeatMessage*>(
      pair.received_by_b.back().second.get());
  ASSERT_NE(heartbeat, nullptr);
  EXPECT_EQ(heartbeat->seq, 9u);
}

// A dialer without the cluster key claims an honest peer's id, survives
// HELLO/CHALLENGE, and fails the AUTH proof. That failure must close the
// connection *anonymously*: striking the claimed-but-unproven identity
// would let any keyless attacker quarantine an honest peer by name,
// blocking its legitimate reconnects.
TEST(TcpTransportTest, KeylessDialerCannotQuarantineClaimedPeer) {
  EventLoop loop;
  auto config = transport_config(0, 2, 0);
  config.auth_key = std::vector<std::uint8_t>(32, 0x11);
  TcpTransport a(loop, config);

  // Raw impostor socket: well-formed HELLO claiming id 1, then an AUTH
  // frame whose proof is garbage (the impostor has no key to compute it).
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(a.listen_port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::uint8_t hello[] = {13, 0, 0, 0,              // frame length
                                0,                        // HELLO tag
                                1, 0, 0, 0,               // claimed id 1
                                9, 9, 9, 9, 9, 9, 9, 9};  // client nonce
  ASSERT_EQ(::send(fd, hello, sizeof(hello), 0),
            static_cast<ssize_t>(sizeof(hello)));
  std::uint8_t auth[4 + 33] = {33, 0, 0, 0, 0xF1};  // proof left all-zero
  ASSERT_EQ(::send(fd, auth, sizeof(auth), 0),
            static_cast<ssize_t>(sizeof(auth)));

  // Drain until `a` rejects the AUTH and closes (recv sees EOF).
  ASSERT_TRUE(pump_until(
      loop,
      [&] {
        while (true) {
          std::uint8_t buf[256];
          const ssize_t got = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
          if (got == 0) return true;  // closed by a
          if (got < 0)
            return errno != EAGAIN && errno != EWOULDBLOCK;  // reset = closed
        }
      },
      2'000 * kMs));
  ::close(fd);

  ASSERT_NE(a.quarantine(), nullptr);
  EXPECT_EQ(a.quarantine()->offenses_total(), 0u);
  EXPECT_EQ(a.quarantine()->strikes(1), 0u);

  // The honest peer 1 — never actually at fault — must connect at once.
  auto config_b = transport_config(1, 2, 0);
  config_b.auth_key = config.auth_key;
  TcpTransport b(loop, config_b);
  b.set_peer(0, a.listen_port());
  b.start();
  EXPECT_TRUE(pump_until(loop, [&] { return b.connected_to(0); },
                         2'000 * kMs));
}

// A listener that does not hold the cluster key (here: a different key)
// cannot satisfy the CHALLENGE proof, so the dialer must never report the
// channel connected — otherwise an impostor listener could black-hole all
// outbound traffic while suppressing reconnects. Neither side may file
// offenses: no identity in this exchange was ever proven.
TEST(TcpTransportTest, DialerRejectsListenerWithoutClusterKey) {
  EventLoop loop;
  auto config_a = transport_config(0, 2, 0);
  config_a.auth_key = std::vector<std::uint8_t>(32, 0x11);
  TcpTransport a(loop, config_a);
  auto config_b = transport_config(1, 2, 0);
  config_b.auth_key = std::vector<std::uint8_t>(32, 0x22);
  TcpTransport b(loop, config_b);
  a.set_peer(1, b.listen_port());
  a.start();

  // The proof check is deterministic, so "never connected" is a sound
  // negative assert: every handshake attempt fails before authenticated.
  EXPECT_FALSE(pump_until(loop, [&] { return a.connected_to(1); },
                          300 * kMs));
  EXPECT_EQ(a.quarantine()->offenses_total(), 0u);
  EXPECT_EQ(b.quarantine()->offenses_total(), 0u);
}

TEST(TcpTransportTest, BroadcastSkipsOnlyAbsentPeers) {
  EventLoop loop;
  Pair pair(loop);
  ASSERT_TRUE(pump_until(
      loop,
      [&] { return pair.a->connected_to(1) && pair.b->connected_to(0); },
      2'000 * kMs));
  const crypto::Signer signer(pair.keys, 0);
  pair.a->broadcast(ProcessSet{0, 1},
                    runtime::HeartbeatMessage::make(signer, 3));
  ASSERT_TRUE(pump_until(
      loop,
      [&] {
        return pair.received_by_a.size() == 1 &&
               pair.received_by_b.size() == 1;
      },
      2'000 * kMs));
}

TEST(TcpTransportTest, BurstOfFramesCoalescesIntoFewWritevCalls) {
  EventLoop loop;
  Pair pair(loop);
  ASSERT_TRUE(pump_until(
      loop,
      [&] { return pair.a->connected_to(1) && pair.b->connected_to(0); },
      2'000 * kMs));

  const crypto::Signer signer(pair.keys, 0);
  const IoStats before = pair.a->io_stats();

  // All 32 sends land in one poll round, so the deferred flush must gather
  // them: one (or at worst a handful of) sendmsg calls, not one per frame.
  constexpr std::uint64_t kBurst = 32;
  for (std::uint64_t seq = 0; seq < kBurst; ++seq)
    pair.a->send(1, runtime::HeartbeatMessage::make(signer, seq));
  ASSERT_TRUE(pump_until(
      loop, [&] { return pair.received_by_b.size() == kBurst; },
      5'000 * kMs));

  const IoStats after = pair.a->io_stats();
  EXPECT_EQ(after.frames_sent - before.frames_sent, kBurst);
  EXPECT_LT(after.writev_calls - before.writev_calls, kBurst / 2)
      << "a same-round burst must not pay one syscall per frame";
  EXPECT_GT(after.bytes_sent, before.bytes_sent);

  // The receiver counts every frame exactly once despite the batched
  // arrival (multiple frames drained per poll wakeup).
  const IoStats b_stats = pair.b->io_stats();
  EXPECT_GE(b_stats.frames_received, kBurst);
  EXPECT_GE(b_stats.bytes_received, after.bytes_sent - before.bytes_sent);

  // Order is preserved across the batch.
  for (std::uint64_t seq = 0; seq < kBurst; ++seq) {
    const auto* heartbeat = dynamic_cast<const runtime::HeartbeatMessage*>(
        pair.received_by_b[seq].second.get());
    ASSERT_NE(heartbeat, nullptr);
    EXPECT_EQ(heartbeat->seq, seq);
  }
}

TEST(TcpTransportTest, BatchedSplitWritesStillReassemble) {
  // The split tamper caps one batched write mid-frame; the remainder must
  // go out on the next flush and every frame still arrives whole, in
  // order.
  EventLoop loop;
  Pair pair(loop);
  ASSERT_TRUE(pump_until(
      loop,
      [&] { return pair.a->connected_to(1) && pair.b->connected_to(0); },
      2'000 * kMs));

  const crypto::Signer signer(pair.keys, 0);
  int frame_index = 0;
  pair.a->set_write_tamper([&](ProcessId, std::size_t) {
    TamperPlan plan;
    if (frame_index++ == 1) plan.split_at = 3;  // cap mid-way into frame 1
    return plan;
  });
  for (std::uint64_t seq = 0; seq < 4; ++seq)
    pair.a->send(1, runtime::HeartbeatMessage::make(signer, seq));
  ASSERT_TRUE(pump_until(
      loop, [&] { return pair.received_by_b.size() == 4; }, 5'000 * kMs));
  for (std::uint64_t seq = 0; seq < 4; ++seq) {
    const auto* heartbeat = dynamic_cast<const runtime::HeartbeatMessage*>(
        pair.received_by_b[seq].second.get());
    ASSERT_NE(heartbeat, nullptr);
    EXPECT_EQ(heartbeat->seq, seq);
  }
}

}  // namespace
}  // namespace qsel::net
