// EventLoop + TcpTransport tests on real loopback sockets: timers fire on
// wall-clock time, whole messages survive the trip (including forced
// partial writes), tampering drops/duplicates frames, and outgoing
// connections reconnect with backoff after a peer restart.
//
// Real time makes "nothing arrives" assertions inherently heuristic; the
// tests only assert negatively where the transport is deterministic (a
// dropped frame is never written at all).
#include "net/tcp_transport.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "crypto/signer.hpp"
#include "net/event_loop.hpp"
#include "runtime/heartbeat.hpp"
#include "suspect/update_message.hpp"

namespace qsel::net {
namespace {

constexpr std::uint64_t kMs = 1'000'000;

/// Pumps `loop` until `pred` holds; false on timeout.
bool pump_until(EventLoop& loop, const std::function<bool()>& pred,
                std::uint64_t timeout_ns) {
  const std::uint64_t deadline = loop.now_ns() + timeout_ns;
  while (!pred()) {
    if (loop.now_ns() >= deadline) return false;
    loop.poll_once(kMs);
  }
  return true;
}

TEST(EventLoopTest, TimersFireOnRealTimeInOrder) {
  EventLoop loop;
  std::vector<int> fired;
  loop.timers().schedule_after(8 * kMs, [&] { fired.push_back(2); });
  loop.timers().schedule_after(2 * kMs, [&] { fired.push_back(1); });
  EXPECT_TRUE(
      pump_until(loop, [&] { return fired.size() == 2; }, 2'000 * kMs));
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_GE(loop.now_ns(), 8 * kMs);  // 8ms of real time really elapsed
}

TEST(EventLoopTest, RunForAdvancesClock) {
  EventLoop loop;
  const std::uint64_t before = loop.now_ns();
  loop.run_for(5 * kMs);
  EXPECT_GE(loop.now_ns() - before, 5 * kMs);
}

TcpTransport::Config transport_config(ProcessId self, ProcessId n,
                                      std::uint16_t port) {
  TcpTransport::Config config;
  config.self = self;
  config.n = n;
  config.listen_port = port;
  return config;
}

/// Two transports on one loop, wired to each other.
struct Pair {
  explicit Pair(EventLoop& loop, std::uint16_t port_a = 0,
                std::uint16_t port_b = 0)
      : keys(2, 1),
        a(std::make_unique<TcpTransport>(loop, transport_config(0, 2, port_a))),
        b(std::make_unique<TcpTransport>(loop, transport_config(1, 2, port_b))) {
    wire();
  }

  void wire() {
    a->set_peer(1, b->listen_port());
    b->set_peer(0, a->listen_port());
    a->set_handler([this](ProcessId from, const sim::PayloadPtr& message) {
      received_by_a.emplace_back(from, message);
    });
    b->set_handler([this](ProcessId from, const sim::PayloadPtr& message) {
      received_by_b.emplace_back(from, message);
    });
    a->start();
    b->start();
  }

  crypto::KeyRegistry keys;
  std::unique_ptr<TcpTransport> a;
  std::unique_ptr<TcpTransport> b;
  std::vector<std::pair<ProcessId, sim::PayloadPtr>> received_by_a;
  std::vector<std::pair<ProcessId, sim::PayloadPtr>> received_by_b;
};

TEST(TcpTransportTest, SendsWholeMessagesBothWays) {
  EventLoop loop;
  Pair pair(loop);
  ASSERT_TRUE(pump_until(
      loop,
      [&] { return pair.a->connected_to(1) && pair.b->connected_to(0); },
      2'000 * kMs));

  const crypto::Signer signer_a(pair.keys, 0);
  const crypto::Signer signer_b(pair.keys, 1);
  pair.a->send(1, runtime::HeartbeatMessage::make(signer_a, 7));
  pair.b->send(0, suspect::UpdateMessage::make(
                      signer_b, std::vector<Epoch>{0, 3}));

  ASSERT_TRUE(pump_until(
      loop,
      [&] {
        return pair.received_by_b.size() == 1 &&
               pair.received_by_a.size() == 1;
      },
      2'000 * kMs));

  EXPECT_EQ(pair.received_by_b[0].first, 0u);
  const auto* heartbeat = dynamic_cast<const runtime::HeartbeatMessage*>(
      pair.received_by_b[0].second.get());
  ASSERT_NE(heartbeat, nullptr);
  EXPECT_EQ(heartbeat->seq, 7u);
  EXPECT_TRUE(heartbeat->verify(signer_b, 2));

  EXPECT_EQ(pair.received_by_a[0].first, 1u);
  const auto* update = dynamic_cast<const suspect::UpdateMessage*>(
      pair.received_by_a[0].second.get());
  ASSERT_NE(update, nullptr);
  EXPECT_EQ(update->row, (std::vector<Epoch>{0, 3}));
  EXPECT_TRUE(update->verify(signer_a, 2));
}

TEST(TcpTransportTest, SelfSendDeliversLocally) {
  EventLoop loop;
  Pair pair(loop);
  const crypto::Signer signer(pair.keys, 0);
  pair.a->send(0, runtime::HeartbeatMessage::make(signer, 1));
  ASSERT_TRUE(pump_until(
      loop, [&] { return pair.received_by_a.size() == 1; }, 1'000 * kMs));
  EXPECT_EQ(pair.received_by_a[0].first, 0u);
}

TEST(TcpTransportTest, SplitWritesReassembleIntoWholeFrames) {
  EventLoop loop;
  Pair pair(loop);
  // Cap every first write syscall at one byte: the receiver must see the
  // length prefix and body dribble in across poll rounds.
  pair.a->set_write_tamper([](ProcessId, std::size_t) {
    TamperPlan plan;
    plan.split_at = 1;
    return plan;
  });
  ASSERT_TRUE(pump_until(
      loop, [&] { return pair.a->connected_to(1); }, 2'000 * kMs));

  const crypto::Signer signer(pair.keys, 0);
  constexpr std::uint64_t kCount = 8;
  for (std::uint64_t seq = 0; seq < kCount; ++seq)
    pair.a->send(1, runtime::HeartbeatMessage::make(signer, seq));

  ASSERT_TRUE(pump_until(
      loop, [&] { return pair.received_by_b.size() == kCount; },
      5'000 * kMs));
  for (std::uint64_t seq = 0; seq < kCount; ++seq) {
    const auto* heartbeat = dynamic_cast<const runtime::HeartbeatMessage*>(
        pair.received_by_b[seq].second.get());
    ASSERT_NE(heartbeat, nullptr);
    EXPECT_EQ(heartbeat->seq, seq);  // TCP keeps per-direction order
    EXPECT_TRUE(heartbeat->verify(signer, 2));
  }
}

TEST(TcpTransportTest, DropTamperSuppressesFrames) {
  EventLoop loop;
  Pair pair(loop);
  ASSERT_TRUE(pump_until(
      loop, [&] { return pair.a->connected_to(1); }, 2'000 * kMs));

  pair.a->set_write_tamper([](ProcessId, std::size_t) {
    TamperPlan plan;
    plan.drop = true;
    return plan;
  });
  const crypto::Signer signer(pair.keys, 0);
  pair.a->send(1, runtime::HeartbeatMessage::make(signer, 1));
  loop.run_for(50 * kMs);
  EXPECT_TRUE(pair.received_by_b.empty());

  // Lifting the tamper restores delivery on the same connection.
  pair.a->set_write_tamper({});
  pair.a->send(1, runtime::HeartbeatMessage::make(signer, 2));
  ASSERT_TRUE(pump_until(
      loop, [&] { return pair.received_by_b.size() == 1; }, 2'000 * kMs));
  const auto* heartbeat = dynamic_cast<const runtime::HeartbeatMessage*>(
      pair.received_by_b[0].second.get());
  ASSERT_NE(heartbeat, nullptr);
  EXPECT_EQ(heartbeat->seq, 2u);
}

TEST(TcpTransportTest, DuplicateTamperDeliversTwice) {
  EventLoop loop;
  Pair pair(loop);
  ASSERT_TRUE(pump_until(
      loop, [&] { return pair.a->connected_to(1); }, 2'000 * kMs));

  pair.a->set_write_tamper([](ProcessId, std::size_t) {
    TamperPlan plan;
    plan.duplicate = true;
    return plan;
  });
  const crypto::Signer signer(pair.keys, 0);
  pair.a->send(1, runtime::HeartbeatMessage::make(signer, 5));
  ASSERT_TRUE(pump_until(
      loop, [&] { return pair.received_by_b.size() == 2; }, 2'000 * kMs));
  for (const auto& [from, message] : pair.received_by_b) {
    const auto* heartbeat =
        dynamic_cast<const runtime::HeartbeatMessage*>(message.get());
    ASSERT_NE(heartbeat, nullptr);
    EXPECT_EQ(heartbeat->seq, 5u);
  }
}

TEST(TcpTransportTest, ReconnectsAfterPeerRestart) {
  EventLoop loop;
  Pair pair(loop);
  ASSERT_TRUE(pump_until(
      loop, [&] { return pair.a->connected_to(1); }, 2'000 * kMs));
  const std::uint16_t port_b = pair.b->listen_port();

  // Kill b. a's outgoing connection dies; reconnects hit a dead port and
  // back off.
  pair.b.reset();
  ASSERT_TRUE(pump_until(
      loop, [&] { return !pair.a->connected_to(1); }, 2'000 * kMs));

  // Restart b on the same port (SO_REUSEADDR): a's backoff loop must find
  // it without any help and deliver a fresh send.
  pair.b = std::make_unique<TcpTransport>(loop,
                                          transport_config(1, 2, port_b));
  ASSERT_EQ(pair.b->listen_port(), port_b);
  pair.b->set_peer(0, pair.a->listen_port());
  pair.b->set_handler([&](ProcessId from, const sim::PayloadPtr& message) {
    pair.received_by_b.emplace_back(from, message);
  });
  pair.b->start();

  ASSERT_TRUE(pump_until(
      loop, [&] { return pair.a->connected_to(1); }, 10'000 * kMs));
  const crypto::Signer signer(pair.keys, 0);
  pair.a->send(1, runtime::HeartbeatMessage::make(signer, 9));
  ASSERT_TRUE(pump_until(
      loop, [&] { return !pair.received_by_b.empty(); }, 2'000 * kMs));
  const auto* heartbeat = dynamic_cast<const runtime::HeartbeatMessage*>(
      pair.received_by_b.back().second.get());
  ASSERT_NE(heartbeat, nullptr);
  EXPECT_EQ(heartbeat->seq, 9u);
}

TEST(TcpTransportTest, BroadcastSkipsOnlyAbsentPeers) {
  EventLoop loop;
  Pair pair(loop);
  ASSERT_TRUE(pump_until(
      loop,
      [&] { return pair.a->connected_to(1) && pair.b->connected_to(0); },
      2'000 * kMs));
  const crypto::Signer signer(pair.keys, 0);
  pair.a->broadcast(ProcessSet{0, 1},
                    runtime::HeartbeatMessage::make(signer, 3));
  ASSERT_TRUE(pump_until(
      loop,
      [&] {
        return pair.received_by_a.size() == 1 &&
               pair.received_by_b.size() == 1;
      },
      2'000 * kMs));
}

}  // namespace
}  // namespace qsel::net
