// backoff_delay property tests: every draw stays inside the jittered
// envelope around min(cap, base << attempt), the floor of base/2 holds
// even at full jitter, growth stops at max_exponent, and two peers with
// different seeds actually decorrelate (the entire reason jitter exists).
#include "net/backoff.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "common/rng.hpp"

namespace qsel::net {
namespace {

constexpr SimDuration kMs = 1'000'000;

TEST(BackoffTest, DelaysStayInsideTheJitteredEnvelope) {
  BackoffConfig config;
  config.base = 10 * kMs;
  config.cap = 1000 * kMs;
  config.jitter = 0.5;
  Rng rng(1);
  for (std::uint32_t attempt = 0; attempt < 12; ++attempt) {
    const SimDuration nominal =
        std::min<SimDuration>(config.cap, config.base << attempt);
    for (int draw = 0; draw < 200; ++draw) {
      const SimDuration delay = backoff_delay(config, attempt, rng);
      EXPECT_GE(delay, nominal / 2) << "attempt " << attempt;
      EXPECT_LE(delay, nominal + nominal / 2) << "attempt " << attempt;
      EXPECT_LE(delay, config.cap + config.cap / 2) << "attempt " << attempt;
    }
  }
}

TEST(BackoffTest, NeverBelowHalfTheBaseEvenWithNearFullJitter) {
  BackoffConfig config;
  config.base = 10 * kMs;
  config.jitter = 0.99;  // scale factor can reach ~0.01
  Rng rng(2);
  for (int draw = 0; draw < 2000; ++draw)
    EXPECT_GE(backoff_delay(config, 0, rng), config.base / 2);
}

TEST(BackoffTest, ZeroJitterIsExactExponential) {
  BackoffConfig config;
  config.base = 10 * kMs;
  config.cap = 1000 * kMs;
  config.jitter = 0.0;
  Rng rng(3);
  EXPECT_EQ(backoff_delay(config, 0, rng), 10 * kMs);
  EXPECT_EQ(backoff_delay(config, 1, rng), 20 * kMs);
  EXPECT_EQ(backoff_delay(config, 3, rng), 80 * kMs);
  EXPECT_EQ(backoff_delay(config, 20, rng), 1000 * kMs);  // capped
}

TEST(BackoffTest, GrowthStopsAtMaxExponent) {
  BackoffConfig config;
  config.base = 1 * kMs;
  config.cap = ~SimDuration{0};  // cap out of the way: exponent must save us
  config.jitter = 0.0;
  config.max_exponent = 4;
  Rng rng(4);
  const SimDuration plateau = backoff_delay(config, 4, rng);
  EXPECT_EQ(plateau, 16 * kMs);
  EXPECT_EQ(backoff_delay(config, 5, rng), plateau);
  EXPECT_EQ(backoff_delay(config, 63, rng), plateau);
}

TEST(BackoffTest, DifferentSeedsDecorrelate) {
  // The reconnect-storm scenario: peers retrying the same attempt number
  // must not share a schedule. With 30% jitter two streams agreeing on
  // every one of 50 draws means the jitter is not being applied.
  BackoffConfig config;
  config.jitter = 0.3;
  Rng a(100);
  Rng b(200);
  int identical = 0;
  for (std::uint32_t attempt = 0; attempt < 50; ++attempt)
    if (backoff_delay(config, attempt % 6, a) ==
        backoff_delay(config, attempt % 6, b))
      ++identical;
  EXPECT_LT(identical, 50);
  // And one seed replays deterministically, so tests can pin schedules.
  Rng c(100);
  Rng d(100);
  for (std::uint32_t attempt = 0; attempt < 50; ++attempt)
    EXPECT_EQ(backoff_delay(config, attempt % 6, c),
              backoff_delay(config, attempt % 6, d));
}

}  // namespace
}  // namespace qsel::net
