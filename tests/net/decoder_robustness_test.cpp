// Decoder robustness: the codec header promises the Decoder never throws
// on malformed input — Byzantine senders may produce arbitrary garbage,
// which must surface as ok() == false, not as a crash, an overrun or an
// absurd allocation. Nothing exercised that promise before; this test
// feeds every decoder method truncated and garbage bytes.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "app/kv_store.hpp"
#include "common/rng.hpp"
#include "net/codec.hpp"

namespace qsel::net {
namespace {

/// A canonical buffer exercising every Encoder/Decoder method once.
std::vector<std::uint8_t> full_encoding() {
  Encoder enc;
  enc.u8(0x5a);
  enc.u32(0xdeadbeef);
  enc.u64(0x0123456789abcdefULL);
  enc.process_id(17);
  enc.process_set(ProcessSet{0, 5, 63});
  crypto::Digest digest;
  for (std::size_t i = 0; i < digest.bytes.size(); ++i)
    digest.bytes[i] = static_cast<std::uint8_t>(i);
  enc.digest(digest);
  crypto::Signature sig;
  sig.tag = digest;
  sig.signer = 3;
  enc.signature(sig);
  enc.bytes(std::vector<std::uint8_t>{1, 2, 3, 4});
  enc.str("quorum");
  enc.u64_vector(std::vector<std::uint64_t>{7, 8, 9});
  return std::move(enc).take();
}

/// Runs the full read sequence matching full_encoding() against `data`.
void decode_all(Decoder& dec) {
  dec.u8();
  dec.u32();
  dec.u64();
  dec.process_id();
  dec.process_set();
  dec.digest();
  dec.signature();
  dec.bytes();
  dec.str();
  dec.u64_vector();
}

TEST(DecoderRobustnessTest, FullBufferDecodesClean) {
  const auto data = full_encoding();
  Decoder dec(data);
  decode_all(dec);
  EXPECT_TRUE(dec.ok());
  EXPECT_TRUE(dec.done());
}

TEST(DecoderRobustnessTest, EveryTruncationFailsWithoutThrowing) {
  const auto data = full_encoding();
  for (std::size_t len = 0; len < data.size(); ++len) {
    Decoder dec(std::span(data.data(), len));
    EXPECT_NO_THROW(decode_all(dec)) << "threw at truncation length " << len;
    // A strict prefix is always missing bytes some later read needs.
    EXPECT_FALSE(dec.ok()) << "accepted a truncated buffer of " << len
                           << "/" << data.size() << " bytes";
    EXPECT_FALSE(dec.done());
  }
}

TEST(DecoderRobustnessTest, ReadsAfterFailureStayFailedAndDefined) {
  const auto data = full_encoding();
  Decoder dec(std::span(data.data(), 2));  // kill it mid-u32
  dec.u8();
  EXPECT_EQ(dec.u32(), 0u);  // failed reads return zero values
  EXPECT_FALSE(dec.ok());
  // Every subsequent read, of any type, stays failed and well-defined.
  EXPECT_EQ(dec.u64(), 0u);
  EXPECT_EQ(dec.str(), "");
  EXPECT_EQ(dec.bytes(), std::vector<std::uint8_t>{});
  EXPECT_EQ(dec.u64_vector(), std::vector<std::uint64_t>{});
  EXPECT_EQ(dec.digest(), crypto::Digest{});
  EXPECT_FALSE(dec.ok());
}

TEST(DecoderRobustnessTest, LengthPrefixLyingBeyondBufferFails) {
  // bytes()/str() whose length prefix claims more than the buffer holds.
  Encoder enc;
  enc.u64(1'000'000);  // "1 MB follows" — but nothing does
  const auto data = std::move(enc).take();
  {
    Decoder dec(data);
    EXPECT_EQ(dec.bytes(), std::vector<std::uint8_t>{});
    EXPECT_FALSE(dec.ok());
  }
  {
    Decoder dec(data);
    EXPECT_EQ(dec.str(), "");
    EXPECT_FALSE(dec.ok());
  }
}

TEST(DecoderRobustnessTest, AbsurdVectorCountRejectedBeforeAllocating) {
  // A Byzantine u64_vector count of 2^61 must not attempt the allocation.
  Encoder enc;
  enc.u64(std::uint64_t{1} << 61);
  enc.u64(42);  // one real element
  const auto data = std::move(enc).take();
  Decoder dec(data);
  EXPECT_NO_THROW({
    const auto values = dec.u64_vector();
    EXPECT_TRUE(values.empty());
  });
  EXPECT_FALSE(dec.ok());
}

TEST(DecoderRobustnessTest, RandomGarbageNeverThrows) {
  Rng rng(0xbadc0de);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> garbage(rng.below(64));
    for (auto& b : garbage)
      b = static_cast<std::uint8_t>(rng.below(256));
    Decoder dec(garbage);
    EXPECT_NO_THROW(decode_all(dec));
    // 63 bytes cannot satisfy the ~150-byte read sequence.
    EXPECT_FALSE(dec.ok());
  }
}

// The one message-decoding path that consumes raw (possibly Byzantine)
// bytes end-to-end: KV operations inside client requests.
TEST(DecoderRobustnessTest, OperationDecodeRejectsTruncationAndGarbage) {
  app::Operation op;
  op.type = app::OpType::kPut;
  op.key = "key";
  op.value = "value";
  const std::vector<std::uint8_t> good = op.encode();

  const auto decoded = app::Operation::decode(good);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->key, "key");
  EXPECT_EQ(decoded->value, "value");

  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_NO_THROW({
      const auto bad = app::Operation::decode(std::span(good.data(), len));
      EXPECT_FALSE(bad.has_value()) << "accepted truncation at " << len;
    });
  }

  // Trailing junk must be rejected too (done() discipline).
  std::vector<std::uint8_t> padded = good;
  padded.push_back(0);
  EXPECT_FALSE(app::Operation::decode(padded).has_value());

  // Unknown opcode.
  std::vector<std::uint8_t> bad_type = good;
  bad_type[0] = 0x7f;
  EXPECT_FALSE(app::Operation::decode(bad_type).has_value());

  Rng rng(0xfeed);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> garbage(rng.below(48));
    for (auto& b : garbage)
      b = static_cast<std::uint8_t>(rng.below(256));
    EXPECT_NO_THROW((void)app::Operation::decode(garbage));
  }
}

}  // namespace
}  // namespace qsel::net
