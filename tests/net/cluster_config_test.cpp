// ClusterConfig parser tests: the happy path with comments and odd
// whitespace, the to_text/parse round-trip that the loopback harness and
// qsel_node rely on, and one test per rejection — each checking that the
// error names the offending line, since "fix line 7" is the whole point
// of a validating parser for a hand-edited file.
#include "net/cluster_config.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>

namespace qsel::net {
namespace {

constexpr SimDuration kMs = 1'000'000;

const char* kValid = R"(# 4-node cluster, one fault
n = 4
f = 1
auth_key = 00ff10ab        # hex key
seed = 7
heartbeat_ms = 5
round_ms = 10
fd_initial_ms = 20
fd_max_ms = 500
reconnect_base_ms = 2
reconnect_cap_ms = 100
store_dir = /tmp/qsel-state
node 0 = 10.0.0.1:47600
node 1 = 10.0.0.2:47600
node 2 = 10.0.0.3:47601
node 3 = 127.0.0.1:47602
)";

TEST(ClusterConfigTest, ParsesCommentsKeysAndNodeLines) {
  const ClusterConfig config = ClusterConfig::parse(kValid);
  EXPECT_EQ(config.n, 4u);
  EXPECT_EQ(config.f, 1);
  EXPECT_EQ(config.auth_key,
            (std::vector<std::uint8_t>{0x00, 0xff, 0x10, 0xab}));
  EXPECT_EQ(config.seed, 7u);
  EXPECT_EQ(config.heartbeat_period, 5 * kMs);
  EXPECT_EQ(config.round_length, 10 * kMs);
  EXPECT_EQ(config.fd_initial_timeout, 20 * kMs);
  EXPECT_EQ(config.fd_max_timeout, 500 * kMs);
  EXPECT_EQ(config.reconnect_base, 2 * kMs);
  EXPECT_EQ(config.reconnect_cap, 100 * kMs);
  EXPECT_EQ(config.store_dir, "/tmp/qsel-state");
  ASSERT_EQ(config.nodes.size(), 4u);
  EXPECT_EQ(config.nodes[0], (NodeAddress{"10.0.0.1", 47600}));
  EXPECT_EQ(config.nodes[3], (NodeAddress{"127.0.0.1", 47602}));
}

TEST(ClusterConfigTest, ToTextParseRoundTrips) {
  const ClusterConfig config = ClusterConfig::parse(kValid);
  EXPECT_EQ(ClusterConfig::parse(config.to_text()), config);
}

TEST(ClusterConfigTest, RoundTripsWithoutOptionalFields) {
  ClusterConfig config = ClusterConfig::parse(kValid);
  config.auth_key.clear();
  config.store_dir.clear();
  EXPECT_EQ(ClusterConfig::parse(config.to_text()), config);
}

TEST(ClusterConfigTest, LoadReadsAFileAndRejectsAMissingOne) {
  const std::string path = testing::TempDir() + "qsel_cluster_config.txt";
  std::ofstream(path) << kValid;
  EXPECT_EQ(ClusterConfig::load(path), ClusterConfig::parse(kValid));
  EXPECT_THROW(ClusterConfig::load(path + ".nope"), std::runtime_error);
}

const char* kSharded = R"(n = 8
f = 1
seed = 3
node 0 = 127.0.0.1:48000
node 1 = 127.0.0.1:48001
node 2 = 127.0.0.1:48002
node 3 = 127.0.0.1:48003
node 4 = 127.0.0.1:48004
node 5 = 127.0.0.1:48005
node 6 = 127.0.0.1:48006
node 7 = 127.0.0.1:48007

[group 0]
kind = config
members = 0,1,2,3
clients = 6,7
store_subdir = cfg

[group 1]
members = 0,1,2,3   # same machines as the config group
clients = 6
range = ..m

[group 2]
f = 1
members = 4,5,6,7
range = m..
)";

TEST(ClusterConfigGroupTest, ParsesGroupSections) {
  const ClusterConfig config = ClusterConfig::parse(kSharded);
  ASSERT_EQ(config.groups.size(), 3u);

  const GroupConfig* cfg = config.config_group();
  ASSERT_NE(cfg, nullptr);
  EXPECT_EQ(cfg->id, 0u);
  EXPECT_TRUE(cfg->is_config);
  EXPECT_EQ(cfg->members, (std::vector<ProcessId>{0, 1, 2, 3}));
  EXPECT_EQ(cfg->clients, (std::vector<ProcessId>{6, 7}));
  EXPECT_EQ(cfg->store_subdir, "cfg");
  EXPECT_TRUE(cfg->ranges.empty());

  const GroupConfig* low = config.group(1);
  ASSERT_NE(low, nullptr);
  EXPECT_FALSE(low->is_config);
  ASSERT_EQ(low->ranges.size(), 1u);
  EXPECT_EQ(low->ranges[0], (GroupRange{"", "m"}));

  const GroupConfig* high = config.group(2);
  ASSERT_NE(high, nullptr);
  EXPECT_EQ(high->f, 1);
  EXPECT_EQ(high->members, (std::vector<ProcessId>{4, 5, 6, 7}));
  ASSERT_EQ(high->ranges.size(), 1u);
  EXPECT_EQ(high->ranges[0], (GroupRange{"m", ""}));

  EXPECT_EQ(config.group(9), nullptr);
}

TEST(ClusterConfigGroupTest, ShardedToTextRoundTrips) {
  const ClusterConfig config = ClusterConfig::parse(kSharded);
  EXPECT_EQ(ClusterConfig::parse(config.to_text()), config);
}

TEST(ClusterConfigGroupTest, SingleGroupFilesStayValid) {
  const ClusterConfig config = ClusterConfig::parse(kValid);
  EXPECT_TRUE(config.groups.empty());
  EXPECT_EQ(config.config_group(), nullptr);
}

// Rejection helper: parse must throw, and the message must carry the
// expected line number plus a recognizable fragment.
void expect_rejects(const std::string& text, const std::string& line_tag,
                    const std::string& fragment) {
  try {
    ClusterConfig::parse(text);
    FAIL() << "accepted invalid config (wanted: " << fragment << ")";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(line_tag), std::string::npos) << what;
    EXPECT_NE(what.find(fragment), std::string::npos) << what;
  }
}

TEST(ClusterConfigRejectTest, MissingNOrF) {
  expect_rejects("f = 1\n", "line 1", "missing n");
  expect_rejects("n = 4\nnode 0 = a:1\nnode 1 = a:1\nnode 2 = a:1\n"
                 "node 3 = a:1\n",
                 "line 5", "missing f");
}

TEST(ClusterConfigRejectTest, QuorumArithmetic) {
  expect_rejects("n = 4\nf = 0\n", "line 2", "f must be >= 1");
  // n = 4 cannot tolerate f = 2: needs n >= 3f + 1 = 7.
  expect_rejects("n = 4\nf = 2\nnode 0 = a:1\nnode 1 = a:1\nnode 2 = a:1\n"
                 "node 3 = a:1\n",
                 "line 6", "n must be >= 3f + 1");
}

TEST(ClusterConfigRejectTest, NodeLines) {
  expect_rejects("node 0 = a:1\nn = 4\nf = 1\n", "line 1",
                 "node lines must come after n");
  expect_rejects("n = 4\nf = 1\nnode 4 = a:1\n", "line 3",
                 "node id out of range");
  expect_rejects("n = 4\nf = 1\nnode 0 = a:1\nnode 0 = a:2\n", "line 4",
                 "duplicate node id");
  expect_rejects("n = 4\nf = 1\nnode 0 = a:1\n", "line 3", "missing node 1");
  expect_rejects("n = 4\nf = 1\nnode 0 = nocolon\n", "line 3",
                 "host:port");
  expect_rejects("n = 4\nf = 1\nnode 0 = a:0\n", "line 3",
                 "port out of range");
  expect_rejects("n = 4\nf = 1\nnode 0 = a:70000\n", "line 3",
                 "port out of range");
}

TEST(ClusterConfigRejectTest, MalformedValues) {
  expect_rejects("n = four\n", "line 1", "not a number");
  expect_rejects("n = 4\nf = 1\nwhat is this\n", "line 3",
                 "expected key = value");
  expect_rejects("n = 4\nf = 1\ncolour = blue\n", "line 3", "unknown key");
  expect_rejects("n = 4\nf = 1\nauth_key = abc\n", "line 3",
                 "odd-length hex");
  expect_rejects("n = 4\nf = 1\nauth_key = zz\n", "line 3", "invalid hex");
  expect_rejects("n = 99\n", "line 1", "n out of range");
}

TEST(ClusterConfigRejectTest, TimingConstraints) {
  const std::string nodes =
      "node 0 = a:1\nnode 1 = a:1\nnode 2 = a:1\nnode 3 = a:1\n";
  expect_rejects("n = 4\nf = 1\nheartbeat_ms = 0\n" + nodes, "line 7",
                 "heartbeat_ms must be > 0");
  expect_rejects("n = 4\nf = 1\nfd_initial_ms = 100\nfd_max_ms = 50\n" +
                     nodes,
                 "line 8", "fd timeouts");
  expect_rejects("n = 4\nf = 1\nreconnect_base_ms = 100\n"
                 "reconnect_cap_ms = 50\n" +
                     nodes,
                 "line 8", "reconnect backoff");
}

TEST(ClusterConfigRejectTest, GroupSections) {
  const std::string base =
      "n = 4\nf = 1\nnode 0 = a:1\nnode 1 = a:1\nnode 2 = a:1\n"
      "node 3 = a:1\n";  // 6 lines
  expect_rejects(base + "[group 0\n", "line 7", "unterminated section");
  expect_rejects(base + "[shard 0]\n", "line 7", "unknown section");
  expect_rejects(base + "[group 0]\n[group 0]\n", "line 8",
                 "duplicate group id");
  expect_rejects(base + "[group 0]\ncolour = blue\n", "line 8",
                 "unknown group key");
  expect_rejects(base + "[group 0]\nrange = no-separator\n", "line 8",
                 "range must be lo..hi");
  expect_rejects(base + "[group 0]\nrange = m..a\n", "line 8",
                 "hi must be empty or greater");
  expect_rejects(base + "[group 0]\nmembers = 0,,2\n", "line 8",
                 "empty id in list");
  const std::string cfg =
      "[group 0]\nkind = config\nmembers = 0,1,2,3\n";
  // Group validation failures are reported against the end of the file.
  expect_rejects(base + cfg + "[group 1]\nmembers = 0,1,2,4\n", "",
                 "id out of range");
  expect_rejects(base + cfg + "[group 1]\nmembers = 0,1,2,2\n", "",
                 "must be distinct");
  expect_rejects(base + cfg + "[group 1]\nmembers = 0,1,2,3\nclients = 3\n",
                 "", "must be distinct");
  expect_rejects(base + cfg + "[group 1]\nmembers = 0,1,2\n", "",
                 "members must be >= 3f + 1");
  expect_rejects(base + cfg + "[group 1]\n", "", "missing members");
  expect_rejects(base + "[group 1]\nmembers = 0,1,2,3\n", "",
                 "exactly one kind = config");
  expect_rejects(base + cfg + "range = a..b\n", "",
                 "config group cannot serve ranges");
  expect_rejects(base + cfg +
                     "[group 1]\nmembers = 0,1,2,3\nrange = a..m\n"
                     "[group 2]\nmembers = 0,1,2,3\nrange = g..z\n",
                 "", "ranges overlap");
  expect_rejects(base + cfg +
                     "[group 1]\nmembers = 0,1,2,3\nrange = a..\n"
                     "[group 2]\nmembers = 0,1,2,3\nrange = g..z\n",
                 "", "ranges overlap");
}

}  // namespace
}  // namespace qsel::net
