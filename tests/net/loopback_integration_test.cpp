// Loopback integration — the acceptance tests for the TCP substrate.
//
// SevenNodeTamperedPartitionHealConverges is the headline scenario from
// the issue: a 7-node f=2 cluster over real sockets, with 10% of all
// writes dropped (plus delays, duplicates and split writes) AND a
// partition that heals, must still converge to an agreed quorum per
// epoch.
//
// SimulatorTcpParityOnCrashSchedule runs the same logical schedule —
// n = 5, f = 1, crash p1, wait for quiescence — on the virtual-time
// QuorumCluster and the real-TCP LoopbackCluster and compares the final
// per-process quorums via one digest (final_quorum_digest). This is the
// transport parity contract of net/transport.hpp made executable: the
// substrate may change message timing, loss and interleaving, but never
// the protocol outcome.
#include "net/loopback_cluster.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "runtime/quorum_cluster.hpp"

namespace qsel::net {
namespace {

constexpr std::uint64_t kMs = 1'000'000;

TEST(LoopbackClusterTest, CleanNetworkConverges) {
  LoopbackClusterConfig config;
  config.n = 4;
  config.f = 1;
  config.seed = 5;
  LoopbackCluster cluster(config);
  ASSERT_TRUE(cluster.start());
  ASSERT_TRUE(cluster.run_until(
      [&] { return cluster.converged() && !cluster.agreement_error(); },
      20'000 * kMs));
  EXPECT_EQ(cluster.agreement_error(), std::nullopt);
  // Nobody failed, so every node must keep the full default quorum.
  for (ProcessId id : cluster.alive())
    EXPECT_EQ(cluster.process(id).quorum(), ProcessSet::range(0, 3));
}

TEST(LoopbackClusterTest, SevenNodeTamperedPartitionHealConverges) {
  LoopbackClusterConfig config;
  config.n = 7;
  config.f = 2;
  config.seed = 11;
  config.tamper.drop_rate = 0.10;
  config.tamper.delay_rate = 0.05;
  config.tamper.duplicate_rate = 0.05;
  config.tamper.split_rate = 0.10;
  LoopbackCluster cluster(config);
  ASSERT_TRUE(cluster.start());

  // Let the failure detector find its feet under 10% loss, then cut
  // {0,1,2} off from {3,4,5,6} for 300ms of real time and heal.
  cluster.run_for(300 * kMs);
  cluster.partition(ProcessSet{0, 1, 2});
  cluster.run_for(300 * kMs);
  cluster.heal();

  ASSERT_TRUE(cluster.run_until(
      [&] { return cluster.converged() && !cluster.agreement_error(); },
      180'000 * kMs))
      << (cluster.agreement_error()
              ? *cluster.agreement_error()
              : std::string("matrices never converged"));
  EXPECT_EQ(cluster.agreement_error(), std::nullopt);

  // The byte-level faults must actually have fired.
  std::uint64_t dropped = 0, split = 0, delayed = 0, duplicated = 0;
  for (ProcessId id = 0; id < config.n; ++id) {
    dropped += cluster.tamper(id).frames_dropped();
    split += cluster.tamper(id).frames_split();
    delayed += cluster.tamper(id).frames_delayed();
    duplicated += cluster.tamper(id).frames_duplicated();
  }
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(split, 0u);
  EXPECT_GT(delayed, 0u);
  EXPECT_GT(duplicated, 0u);
}

TEST(LoopbackClusterTest, CrashedNodeLeavesEveryQuorum) {
  LoopbackClusterConfig config;
  config.n = 4;
  config.f = 1;
  config.seed = 9;
  LoopbackCluster cluster(config);
  ASSERT_TRUE(cluster.start());
  cluster.run_for(200 * kMs);
  cluster.crash(2);
  EXPECT_EQ(cluster.alive(), (ProcessSet{0, 1, 3}));
  ASSERT_TRUE(cluster.run_until(
      [&] {
        if (!cluster.converged() || cluster.agreement_error()) return false;
        for (ProcessId id : cluster.alive())
          if (cluster.process(id).quorum().contains(2)) return false;
        return true;
      },
      180'000 * kMs));
  for (ProcessId id : cluster.alive())
    EXPECT_EQ(cluster.process(id).quorum(), (ProcessSet{0, 1, 3}));
}

TEST(LoopbackClusterTest, SimulatorTcpParityOnCrashSchedule) {
  // Substrate 1: virtual time. Run the schedule on the simulator and
  // collect the survivors' final quorums.
  runtime::QuorumClusterConfig sim_config;
  sim_config.n = 5;
  sim_config.f = 1;
  sim_config.seed = 3;
  runtime::QuorumCluster sim_cluster(sim_config);
  sim_cluster.start();
  sim_cluster.simulator().run_until(200 * kMs);
  sim_cluster.network().crash(1);
  sim_cluster.simulator().run_until(5'000 * kMs);

  std::vector<std::pair<ProcessId, ProcessSet>> sim_quorums;
  for (ProcessId id : sim_cluster.alive())
    sim_quorums.emplace_back(id, sim_cluster.process(id).quorum());
  const crypto::Digest sim_digest = final_quorum_digest(sim_quorums);

  // Substrate 2: real TCP, same logical schedule. Convergence is awaited
  // (real time has no quiescence instant), then the outcomes must match
  // digest-for-digest.
  LoopbackClusterConfig config;
  config.n = 5;
  config.f = 1;
  config.seed = 3;
  LoopbackCluster cluster(config);
  ASSERT_TRUE(cluster.start());
  cluster.run_for(200 * kMs);
  cluster.crash(1);
  ASSERT_TRUE(cluster.run_until(
      [&] { return cluster.outcome_digest() == sim_digest; }, 180'000 * kMs))
      << "TCP cluster never reached the simulator's outcome; agreement: "
      << cluster.agreement_error().value_or("consistent");
  EXPECT_EQ(cluster.outcome_digest().to_hex(), sim_digest.to_hex());
  EXPECT_EQ(cluster.agreement_error(), std::nullopt);
}

}  // namespace
}  // namespace qsel::net
