// QuarantinePolicy state-machine tests: offenses bar the peer for a
// jittered, exponentially growing window; the strike budget caps the
// window; redemption (a clean streak of authenticated frames) restores
// full standing, CANCEL-style; and good frames below the threshold
// forgive nothing.
#include "net/quarantine.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace qsel::net {
namespace {

constexpr std::uint64_t kMs = 1'000'000;

QuarantineConfig tight_config() {
  QuarantineConfig config;
  config.backoff.base = 50 * kMs;
  config.backoff.cap = 5000 * kMs;
  config.backoff.jitter = 0.3;
  config.strike_budget = 4;
  config.redeem_after = 8;
  return config;
}

TEST(QuarantineTest, FreshPeersAreAdmitted) {
  const QuarantinePolicy policy(4, tight_config(), /*seed=*/1);
  for (ProcessId peer = 0; peer < 4; ++peer) {
    EXPECT_TRUE(policy.admitted(peer, 0));
    EXPECT_EQ(policy.release_at(peer), 0u);
    EXPECT_EQ(policy.strikes(peer), 0u);
  }
  EXPECT_EQ(policy.offenses_total(), 0u);
}

TEST(QuarantineTest, OffenseBarsForAJitteredBaseWindow) {
  QuarantinePolicy policy(4, tight_config(), 1);
  policy.offense(2, 1000 * kMs);
  EXPECT_FALSE(policy.admitted(2, 1000 * kMs));
  EXPECT_EQ(policy.strikes(2), 1u);
  EXPECT_EQ(policy.offenses_total(), 1u);
  // First strike: ~base with 30% jitter, anchored at the offense time.
  const std::uint64_t release = policy.release_at(2);
  EXPECT_GE(release, 1000 * kMs + 35 * kMs);
  EXPECT_LE(release, 1000 * kMs + 65 * kMs);
  // Other peers keep their standing.
  EXPECT_TRUE(policy.admitted(0, 1000 * kMs));
  // The bar expires on schedule.
  EXPECT_TRUE(policy.admitted(2, release));
  EXPECT_FALSE(policy.admitted(2, release - 1));
}

TEST(QuarantineTest, RepeatOffensesGrowTheBarExponentially) {
  QuarantinePolicy policy(4, tight_config(), 7);
  std::uint64_t now = 0;
  std::uint64_t previous_window = 0;
  for (int strike = 1; strike <= 4; ++strike) {
    policy.offense(1, now);
    const std::uint64_t window = policy.release_at(1) - now;
    if (strike > 1) {
      // Each rung's jitter floor (0.7x) must clear the previous rung's
      // ceiling (1.3x) once doubled: 2 * 0.7 > 1.3.
      EXPECT_GT(window, previous_window) << "strike " << strike;
    }
    previous_window = window;
    now = policy.release_at(1) + kMs;
  }
}

TEST(QuarantineTest, StrikeBudgetCapsTheWindow) {
  QuarantineConfig config = tight_config();
  config.backoff.jitter = 0.0;  // exact windows for the plateau check
  QuarantinePolicy policy(4, config, 1);
  std::uint64_t now = 0;
  std::uint64_t plateau = 0;
  for (int strike = 1; strike <= 10; ++strike) {
    policy.offense(3, now);
    const std::uint64_t window = policy.release_at(3) - now;
    if (strike > static_cast<int>(config.strike_budget)) {
      if (plateau == 0) plateau = window;
      EXPECT_EQ(window, plateau) << "strike " << strike;
    }
    now = policy.release_at(3) + kMs;
  }
  EXPECT_EQ(policy.offenses_total(), 10u);
}

TEST(QuarantineTest, RedemptionClearsStrikesAfterACleanStreak) {
  QuarantinePolicy policy(4, tight_config(), 1);
  policy.offense(1, 0);
  policy.offense(1, 1000 * kMs);
  EXPECT_EQ(policy.strikes(1), 2u);

  // Seven good frames (one short of redeem_after): nothing forgiven.
  for (int i = 0; i < 7; ++i) policy.good_frame(1);
  EXPECT_EQ(policy.strikes(1), 2u);
  policy.good_frame(1);  // the eighth
  EXPECT_EQ(policy.strikes(1), 0u);

  // Standing fully restored: the next offense pays first-strike rates.
  policy.offense(1, 50'000 * kMs);
  EXPECT_EQ(policy.strikes(1), 1u);
  EXPECT_LE(policy.release_at(1) - 50'000 * kMs, 65 * kMs);
}

TEST(QuarantineTest, AnOffenseResetsTheGoodStreak) {
  QuarantinePolicy policy(4, tight_config(), 1);
  policy.offense(2, 0);
  for (int i = 0; i < 7; ++i) policy.good_frame(2);
  policy.offense(2, 1000 * kMs);  // streak back to zero, strike added
  for (int i = 0; i < 7; ++i) policy.good_frame(2);
  EXPECT_EQ(policy.strikes(2), 2u);  // 7 + 7 interleaved never redeemed
  policy.good_frame(2);
  EXPECT_EQ(policy.strikes(2), 0u);
}

TEST(QuarantineTest, PerPeerStateIsIndependent) {
  QuarantinePolicy policy(4, tight_config(), 1);
  policy.offense(0, 0);
  policy.offense(0, 1000 * kMs);
  policy.offense(3, 0);
  EXPECT_EQ(policy.strikes(0), 2u);
  EXPECT_EQ(policy.strikes(3), 1u);
  for (int i = 0; i < 8; ++i) policy.good_frame(3);
  EXPECT_EQ(policy.strikes(3), 0u);
  EXPECT_EQ(policy.strikes(0), 2u);  // peer 3's streak redeems only peer 3
}

}  // namespace
}  // namespace qsel::net
