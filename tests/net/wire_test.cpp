// Wire-format round-trip and robustness tests: every message type the
// composed stack puts on TCP must decode back to an authenticating object,
// and every malformed body — Byzantine or corrupted — must come back as
// nullptr, never a crash or a wrong message (the transport then closes the
// connection, see tcp_transport.hpp).
#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "crypto/signer.hpp"
#include "fs/followers_message.hpp"
#include "graph/simple_graph.hpp"
#include "net/codec.hpp"
#include "runtime/heartbeat.hpp"
#include "suspect/delta_update_message.hpp"
#include "suspect/update_message.hpp"
#include "xpaxos/messages.hpp"

namespace qsel::net {
namespace {

constexpr ProcessId kN = 5;

crypto::KeyRegistry test_keys() { return crypto::KeyRegistry(kN, 7); }

TEST(WireTest, HeartbeatRoundTripAuthenticates) {
  const auto keys = test_keys();
  const crypto::Signer signer(keys, 2);
  const auto message = runtime::HeartbeatMessage::make(signer, 41);

  const auto body = encode_message(*message);
  ASSERT_TRUE(body.has_value());
  const sim::PayloadPtr decoded = decode_message(*body, kN);
  ASSERT_NE(decoded, nullptr);

  const auto* heartbeat =
      dynamic_cast<const runtime::HeartbeatMessage*>(decoded.get());
  ASSERT_NE(heartbeat, nullptr);
  EXPECT_EQ(heartbeat->origin, 2u);
  EXPECT_EQ(heartbeat->seq, 41u);
  const crypto::Signer verifier(keys, 0);
  EXPECT_TRUE(heartbeat->verify(verifier, kN));
}

TEST(WireTest, UpdateRoundTripAuthenticates) {
  const auto keys = test_keys();
  const crypto::Signer signer(keys, 3);
  const auto message =
      suspect::UpdateMessage::make(signer, std::vector<Epoch>{0, 2, 0, 1, 5});

  const auto body = encode_message(*message);
  ASSERT_TRUE(body.has_value());
  const sim::PayloadPtr decoded = decode_message(*body, kN);
  ASSERT_NE(decoded, nullptr);

  const auto* update =
      dynamic_cast<const suspect::UpdateMessage*>(decoded.get());
  ASSERT_NE(update, nullptr);
  EXPECT_EQ(update->origin, 3u);
  EXPECT_EQ(update->row, (std::vector<Epoch>{0, 2, 0, 1, 5}));
  const crypto::Signer verifier(keys, 1);
  EXPECT_TRUE(update->verify(verifier, kN));
}

TEST(WireTest, FollowersRoundTripAuthenticates) {
  const auto keys = test_keys();
  const crypto::Signer leader(keys, 0);
  graph::SimpleGraph line(kN);
  line.add_edge(1, 2);
  line.add_edge(2, 3);
  const auto message =
      fs::FollowersMessage::make(leader, ProcessSet{1, 2, 3}, line, 4);

  const auto body = encode_message(*message);
  ASSERT_TRUE(body.has_value());
  const sim::PayloadPtr decoded = decode_message(*body, kN);
  ASSERT_NE(decoded, nullptr);

  const auto* followers =
      dynamic_cast<const fs::FollowersMessage*>(decoded.get());
  ASSERT_NE(followers, nullptr);
  EXPECT_EQ(followers->leader, 0u);
  EXPECT_EQ(followers->followers, (ProcessSet{1, 2, 3}));
  EXPECT_EQ(followers->epoch, 4u);
  EXPECT_EQ(followers->line_edges, message->line_edges);
  const crypto::Signer verifier(keys, 4);
  EXPECT_TRUE(followers->verify(verifier, kN));
}

TEST(WireTest, SimulatorOnlyPayloadHasNoWireForm) {
  struct TestPayload final : sim::Payload {
    std::string_view type_tag() const override { return "test.payload"; }
    std::size_t wire_size() const override { return 0; }
  };
  EXPECT_EQ(encode_message(TestPayload{}), std::nullopt);
}

TEST(WireTest, EmptyBodyRejected) {
  EXPECT_EQ(decode_message({}, kN), nullptr);
}

TEST(WireTest, UnknownTagRejected) {
  Encoder enc;
  enc.u8(0);  // the transport-level HELLO tag is not a message tag
  enc.u32(1);
  EXPECT_EQ(decode_message(enc.view(), kN), nullptr);
  Encoder enc2;
  enc2.u8(200);
  EXPECT_EQ(decode_message(enc2.view(), kN), nullptr);
}

TEST(WireTest, EveryTruncationRejected) {
  const auto keys = test_keys();
  const crypto::Signer signer(keys, 1);
  const auto heartbeat = runtime::HeartbeatMessage::make(signer, 9);
  const auto update =
      suspect::UpdateMessage::make(signer, std::vector<Epoch>(kN, 1));
  graph::SimpleGraph line(kN);
  line.add_edge(0, 2);
  const auto followers =
      fs::FollowersMessage::make(signer, ProcessSet{0, 2, 3}, line, 1);

  for (const sim::Payload* message :
       {static_cast<const sim::Payload*>(heartbeat.get()),
        static_cast<const sim::Payload*>(update.get()),
        static_cast<const sim::Payload*>(followers.get())}) {
    const auto body = encode_message(*message);
    ASSERT_TRUE(body.has_value());
    // Sanity: the untruncated body decodes.
    ASSERT_NE(decode_message(*body, kN), nullptr) << message->type_tag();
    for (std::size_t len = 0; len < body->size(); ++len)
      EXPECT_EQ(decode_message(std::span(*body).first(len), kN), nullptr)
          << message->type_tag() << " truncated to " << len << " bytes";
  }
}

TEST(WireTest, TrailingGarbageRejected) {
  const auto keys = test_keys();
  const crypto::Signer signer(keys, 1);
  const auto message = runtime::HeartbeatMessage::make(signer, 9);
  auto body = encode_message(*message);
  ASSERT_TRUE(body.has_value());
  body->push_back(0x00);
  EXPECT_EQ(decode_message(*body, kN), nullptr);
}

TEST(WireTest, GarbageBytesRejected) {
  // Deterministic pseudo-garbage across a range of lengths; decode must
  // return nullptr or a structurally valid message, never crash.
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (std::size_t len = 1; len <= 128; ++len) {
    std::vector<std::uint8_t> body(len);
    for (auto& byte : body) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      byte = static_cast<std::uint8_t>(state >> 56);
    }
    body[0] = static_cast<std::uint8_t>(1 + len % 3);  // plausible tag
    EXPECT_EQ(decode_message(body, kN), nullptr) << "length " << len;
  }
}

TEST(WireTest, OutOfRangeOriginRejected) {
  const auto keys = test_keys();
  const crypto::Signer signer(keys, 4);
  const auto heartbeat = runtime::HeartbeatMessage::make(signer, 1);
  const auto body = encode_message(*heartbeat);
  ASSERT_TRUE(body.has_value());
  // Valid for n = 5, origin 4 out of range once the system is smaller.
  EXPECT_NE(decode_message(*body, kN), nullptr);
  EXPECT_EQ(decode_message(*body, 4), nullptr);
}

TEST(WireTest, WrongRowWidthRejected) {
  const auto keys = test_keys();
  const crypto::Signer signer(keys, 0);
  const crypto::Signature sig =
      signer.sign(std::vector<std::uint8_t>{1, 2, 3});
  // Width n+1 > n = 5: framing error. Narrower rows pass framing —
  // the decode-time n is only an address-space bound (the shard mux
  // decodes with members+clients, wider than the suspicion matrix) —
  // and UpdateMessage::verify enforces the exact group width instead.
  Encoder wide;
  wide.u8(static_cast<std::uint8_t>(WireType::kUpdate));
  wide.process_id(0);
  wide.u64_vector(std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6});
  wide.signature(sig);
  EXPECT_EQ(decode_message(wide.view(), kN), nullptr);

  Encoder empty;
  empty.u8(static_cast<std::uint8_t>(WireType::kUpdate));
  empty.process_id(0);
  empty.u64_vector({});
  empty.signature(sig);
  EXPECT_EQ(decode_message(empty.view(), kN), nullptr);

  Encoder narrow;
  narrow.u8(static_cast<std::uint8_t>(WireType::kUpdate));
  narrow.process_id(0);
  narrow.u64_vector(std::vector<std::uint64_t>{1, 2, 3});
  narrow.signature(sig);
  const auto decoded = decode_message(narrow.view(), kN);
  ASSERT_NE(decoded, nullptr);
  const auto* update =
      dynamic_cast<const suspect::UpdateMessage*>(decoded.get());
  ASSERT_NE(update, nullptr);
  EXPECT_FALSE(update->verify(crypto::Signer(keys, 1), kN));
}

TEST(WireTest, OversizedEdgeListRejected) {
  const auto keys = test_keys();
  const crypto::Signer signer(keys, 0);
  const crypto::Signature sig =
      signer.sign(std::vector<std::uint8_t>{4, 5, 6});
  Encoder enc;
  enc.u8(static_cast<std::uint8_t>(WireType::kFollowers));
  enc.process_id(0);
  enc.process_set(ProcessSet{1, 2});
  enc.u64(1);
  // A line subgraph on n nodes has < n edges; claim n of them.
  std::vector<std::uint64_t> edges;
  for (std::uint64_t i = 0; i < kN; ++i) edges.push_back(i << 32 | (i + 1));
  enc.u64_vector(edges);
  enc.signature(sig);
  EXPECT_EQ(decode_message(enc.view(), kN), nullptr);
}

TEST(WireTest, EdgeEndpointOutOfRangeRejected) {
  const auto keys = test_keys();
  const crypto::Signer signer(keys, 0);
  const crypto::Signature sig =
      signer.sign(std::vector<std::uint8_t>{7, 8, 9});
  Encoder enc;
  enc.u8(static_cast<std::uint8_t>(WireType::kFollowers));
  enc.process_id(0);
  enc.process_set(ProcessSet{1, 2});
  enc.u64(1);
  // u = 7 >= n = 5.
  enc.u64_vector(std::vector<std::uint64_t>{(std::uint64_t{7} << 32) | 1});
  enc.signature(sig);
  EXPECT_EQ(decode_message(enc.view(), kN), nullptr);
}

TEST(WireTest, DeltaUpdateRoundTripAuthenticates) {
  const auto keys = test_keys();
  const crypto::Signer signer(keys, 1);
  const auto message = suspect::DeltaUpdateMessage::make(
      signer, /*version=*/7,
      {suspect::DeltaCell{0, 3}, suspect::DeltaCell{2, 5},
       suspect::DeltaCell{4, 3}});

  const auto body = encode_message(*message);
  ASSERT_TRUE(body.has_value());
  const sim::PayloadPtr decoded = decode_message(*body, kN);
  ASSERT_NE(decoded, nullptr);

  const auto* delta =
      dynamic_cast<const suspect::DeltaUpdateMessage*>(decoded.get());
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->origin, 1u);
  EXPECT_EQ(delta->version, 7u);
  EXPECT_EQ(delta->cells, message->cells);
  const crypto::Signer verifier(keys, 0);
  EXPECT_TRUE(delta->verify(verifier, kN));
  // Truncations of the valid body never decode.
  for (std::size_t len = 0; len < body->size(); ++len)
    EXPECT_EQ(decode_message(std::span(*body).first(len), kN), nullptr);
}

TEST(WireTest, RowDigestRoundTrips) {
  suspect::RowDigestMessage message;
  message.entries.push_back(
      {0, suspect::row_digest(std::vector<Epoch>{0, 1, 0, 0, 2})});
  message.entries.push_back(
      {3, suspect::row_digest(std::vector<Epoch>{4, 0, 0, 0, 0})});

  const auto body = encode_message(message);
  ASSERT_TRUE(body.has_value());
  const sim::PayloadPtr decoded = decode_message(*body, kN);
  ASSERT_NE(decoded, nullptr);

  const auto* digest =
      dynamic_cast<const suspect::RowDigestMessage*>(decoded.get());
  ASSERT_NE(digest, nullptr);
  EXPECT_EQ(digest->entries, message.entries);
  EXPECT_TRUE(digest->well_formed(kN));
  for (std::size_t len = 0; len < body->size(); ++len)
    EXPECT_EQ(decode_message(std::span(*body).first(len), kN), nullptr);
}

TEST(WireTest, MalformedDeltaRejected) {
  const auto keys = test_keys();
  const crypto::Signer signer(keys, 1);
  const auto valid = suspect::DeltaUpdateMessage::make(
      signer, 1, {suspect::DeltaCell{0, 2}, suspect::DeltaCell{3, 2}});
  const auto body = encode_message(*valid);
  ASSERT_TRUE(body.has_value());

  // Empty cell list (count = 0).
  {
    auto bad = *body;
    bad[1 + 4 + 8] = 0;  // tag, origin, version, then the count byte (LE)
    EXPECT_EQ(decode_message(bad, kN), nullptr);
  }
  // Column out of range.
  {
    auto bad = *body;
    bad[1 + 4 + 8 + 4] = kN;  // first cell's column
    EXPECT_EQ(decode_message(bad, kN), nullptr);
  }
  // Columns not strictly increasing (swap cell columns 0 <-> 3).
  {
    auto bad = *body;
    bad[1 + 4 + 8 + 4] = 3;
    bad[1 + 4 + 8 + 4 + 12] = 0;
    EXPECT_EQ(decode_message(bad, kN), nullptr);
  }
  // Zero stamp.
  {
    auto bad = *body;
    for (std::size_t i = 0; i < 8; ++i) bad[1 + 4 + 8 + 4 + 4 + i] = 0;
    EXPECT_EQ(decode_message(bad, kN), nullptr);
  }
}

TEST(WireTest, MalformedRowDigestRejected) {
  suspect::RowDigestMessage message;
  message.entries.push_back({1, suspect::RowDigest{}});
  message.entries.push_back({2, suspect::RowDigest{}});
  const auto body = encode_message(message);
  ASSERT_TRUE(body.has_value());

  // Rows not strictly increasing.
  {
    auto bad = *body;
    bad[1 + 4] = 2;           // first entry row
    bad[1 + 4 + 20] = 1;      // second entry row
    EXPECT_EQ(decode_message(bad, kN), nullptr);
  }
  // Row out of range.
  {
    auto bad = *body;
    bad[1 + 4 + 20] = kN;
    EXPECT_EQ(decode_message(bad, kN), nullptr);
  }
  // Trailing garbage.
  {
    auto bad = *body;
    bad.push_back(0xAB);
    EXPECT_EQ(decode_message(bad, kN), nullptr);
  }
}

TEST(WireTest, TamperedDeltaFailsAuthentication) {
  const auto keys = test_keys();
  const crypto::Signer signer(keys, 2);
  const auto message = suspect::DeltaUpdateMessage::make(
      signer, 3, {suspect::DeltaCell{1, 4}});
  const auto body = encode_message(*message);
  ASSERT_TRUE(body.has_value());
  auto bad = *body;
  bad[1 + 4 + 8 + 4 + 4] ^= 0x01;  // flip a stamp bit
  const auto decoded = decode_message(bad, kN);
  if (decoded != nullptr) {
    const auto* delta =
        dynamic_cast<const suspect::DeltaUpdateMessage*>(decoded.get());
    ASSERT_NE(delta, nullptr);
    const crypto::Signer verifier(keys, 0);
    EXPECT_FALSE(delta->verify(verifier, kN))
        << "a flipped stamp must not re-authenticate";
  }
}

TEST(WireTest, BatchedPrepareRoundTripAuthenticates) {
  const auto keys = test_keys();
  const crypto::Signer leader(keys, 0);
  std::vector<xpaxos::BatchEntry> entries;
  entries.push_back({1, 7, {0xaa, 0xbb}});
  entries.push_back({2, 3, {0xcc}});
  const auto message = std::make_shared<xpaxos::PrepareMessage>(
      xpaxos::PrepareMessage::make_batch(leader, 1, 9, entries));

  const auto body = encode_message(*message);
  ASSERT_TRUE(body.has_value());
  const sim::PayloadPtr decoded = decode_message(*body, kN);
  ASSERT_NE(decoded, nullptr);
  const auto* prepare =
      dynamic_cast<const xpaxos::PrepareMessage*>(decoded.get());
  ASSERT_NE(prepare, nullptr);
  ASSERT_EQ(prepare->requests.size(), 2u);
  EXPECT_EQ(prepare->requests, message->requests);
  const crypto::Signer verifier(keys, 1);
  EXPECT_TRUE(prepare->verify(verifier, kN, 0));
}

TEST(WireTest, PrepareBatchCountOutOfRangeRejectedAtDecode) {
  // A PREPARE carries 1..kMaxBatch entries; an empty batch and an
  // oversized batch must both die at decode, signature never consulted.
  const auto keys = test_keys();
  const crypto::Signer leader(keys, 0);
  const std::vector<std::uint8_t> junk{0x00};
  const auto craft = [&](std::uint32_t count) {
    Encoder enc;
    enc.u8(static_cast<std::uint8_t>(WireType::kPrepare));
    enc.u64(1);  // view
    enc.u64(9);  // slot
    enc.u32(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      enc.u32(1);                                  // client
      enc.u64(i + 1);                              // client_seq
      enc.bytes(std::vector<std::uint8_t>{0x42});  // op
    }
    enc.signature(leader.sign(junk));
    return std::move(enc).take();
  };

  EXPECT_EQ(decode_message(craft(0), kN), nullptr) << "empty batch";
  const auto over =
      static_cast<std::uint32_t>(xpaxos::PrepareMessage::kMaxBatch + 1);
  EXPECT_EQ(decode_message(craft(over), kN), nullptr) << "oversized batch";
  // The same body with an in-range count decodes (proving the crafted
  // layout is right and only the count bound rejected the others).
  EXPECT_NE(decode_message(craft(1), kN), nullptr);
  EXPECT_NE(decode_message(
                craft(static_cast<std::uint32_t>(
                    xpaxos::PrepareMessage::kMaxBatch)),
                kN),
            nullptr);
}

}  // namespace
}  // namespace qsel::net
