#include "net/codec.hpp"

#include <gtest/gtest.h>

namespace qsel::net {
namespace {

TEST(CodecTest, ScalarRoundTrip) {
  Encoder enc;
  enc.u8(0xab);
  enc.u32(0xdeadbeef);
  enc.u64(0x0123456789abcdefULL);
  enc.process_id(17);
  enc.process_set(ProcessSet{0, 5, 63});

  Decoder dec(enc.view());
  EXPECT_EQ(dec.u8(), 0xab);
  EXPECT_EQ(dec.u32(), 0xdeadbeefu);
  EXPECT_EQ(dec.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(dec.process_id(), 17u);
  EXPECT_EQ(dec.process_set(), (ProcessSet{0, 5, 63}));
  EXPECT_TRUE(dec.done());
}

TEST(CodecTest, BytesAndStringRoundTrip) {
  Encoder enc;
  enc.str("hello");
  enc.bytes(std::vector<std::uint8_t>{1, 2, 3});
  enc.str("");

  Decoder dec(enc.view());
  EXPECT_EQ(dec.str(), "hello");
  EXPECT_EQ(dec.bytes(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(dec.str(), "");
  EXPECT_TRUE(dec.done());
}

TEST(CodecTest, U64VectorRoundTrip) {
  Encoder enc;
  const std::vector<std::uint64_t> values{0, 1, ~std::uint64_t{0}, 42};
  enc.u64_vector(values);
  Decoder dec(enc.view());
  EXPECT_EQ(dec.u64_vector(), values);
  EXPECT_TRUE(dec.done());
}

TEST(CodecTest, DigestAndSignatureRoundTrip) {
  const crypto::KeyRegistry keys(3, 1);
  const crypto::Signer signer(keys, 2);
  const std::vector<std::uint8_t> msg{9, 9, 9};
  const crypto::Signature sig = signer.sign(msg);

  Encoder enc;
  enc.digest(sig.tag);
  enc.signature(sig);
  Decoder dec(enc.view());
  EXPECT_EQ(dec.digest(), sig.tag);
  EXPECT_EQ(dec.signature(), sig);
  EXPECT_TRUE(dec.done());
}

TEST(CodecTest, TruncatedInputSetsError) {
  Encoder enc;
  enc.u64(7);
  const auto bytes = std::move(enc).take();
  Decoder dec(std::span(bytes.data(), 3));
  dec.u64();
  EXPECT_FALSE(dec.ok());
  EXPECT_FALSE(dec.done());
  // Subsequent reads stay failed and return zero values, never throw.
  EXPECT_EQ(dec.u32(), 0u);
  EXPECT_FALSE(dec.ok());
}

TEST(CodecTest, MalformedLengthPrefixRejected) {
  // A Byzantine length prefix claiming 2^60 elements must not allocate.
  Encoder enc;
  enc.u64(std::uint64_t{1} << 60);
  const auto bytes = std::move(enc).take();
  Decoder dec(bytes);
  EXPECT_TRUE(dec.u64_vector().empty());
  EXPECT_FALSE(dec.ok());

  Decoder dec2(bytes);
  EXPECT_TRUE(dec2.bytes().empty());
  EXPECT_FALSE(dec2.ok());
}

TEST(CodecTest, DoneDetectsTrailingGarbage) {
  Encoder enc;
  enc.u32(1);
  enc.u8(0xff);
  Decoder dec(enc.view());
  dec.u32();
  EXPECT_TRUE(dec.ok());
  EXPECT_FALSE(dec.done());
}

TEST(CodecTest, EncodingIsCanonical) {
  // Same logical content must produce identical bytes (signatures bind
  // the canonical encoding).
  Encoder a;
  a.process_set(ProcessSet{1, 2});
  a.u64(5);
  Encoder b;
  b.process_set(ProcessSet{2, 1});
  b.u64(5);
  EXPECT_EQ(std::vector(a.view().begin(), a.view().end()),
            std::vector(b.view().begin(), b.view().end()));
}

}  // namespace
}  // namespace qsel::net
