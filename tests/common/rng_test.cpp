#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

namespace qsel {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(1), 0u);
  }
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(99);
  std::array<int, 10> buckets{};
  const int samples = 100000;
  for (int i = 0; i < samples; ++i)
    ++buckets[static_cast<std::size_t>(rng.below(buckets.size()))];
  for (int count : buckets) {
    EXPECT_GT(count, samples / 10 - 600);
    EXPECT_LT(count, samples / 10 + 600);
  }
}

TEST(RngTest, BetweenInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ForkIsIndependentStream) {
  Rng parent(77);
  Rng child = parent.fork();
  // Child diverges from a same-seeded parent clone.
  Rng parent_clone(77);
  parent_clone.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (child() == parent()) ++equal;
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace qsel
