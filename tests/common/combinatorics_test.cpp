#include "common/combinatorics.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <set>

namespace qsel {
namespace {

TEST(BinomialTest, SmallValues) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(10, 3), 120u);
  EXPECT_EQ(binomial(3, 5), 0u);
}

TEST(BinomialTest, PaperBounds) {
  // C(f+2, 2) — the Theorem 4 lower bound — for small f.
  EXPECT_EQ(binomial(1 + 2, 2), 3u);
  EXPECT_EQ(binomial(2 + 2, 2), 6u);
  EXPECT_EQ(binomial(3 + 2, 2), 10u);
  EXPECT_EQ(binomial(10 + 2, 2), 66u);
}

TEST(BinomialTest, PascalIdentity) {
  for (std::uint64_t n = 1; n < 40; ++n)
    for (std::uint64_t k = 1; k <= n; ++k)
      EXPECT_EQ(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
}

TEST(BinomialTest, SaturatesOnOverflow) {
  EXPECT_EQ(binomial(200, 100), std::numeric_limits<std::uint64_t>::max());
}

TEST(SubsetEnumerationTest, FirstSubset) {
  EXPECT_EQ(first_subset(5, 2), (ProcessSet{0, 1}));
  EXPECT_EQ(first_subset(5, 0), ProcessSet{});
}

TEST(SubsetEnumerationTest, EnumeratesAllSubsetsExactlyOnce) {
  const ProcessId n = 7;
  const int k = 3;
  std::set<std::uint64_t> seen;
  std::optional<ProcessSet> s = first_subset(n, k);
  while (s) {
    EXPECT_EQ(s->size(), k);
    EXPECT_TRUE(s->is_subset_of(ProcessSet::full(n)));
    EXPECT_TRUE(seen.insert(s->mask()).second) << "duplicate subset";
    s = next_subset(*s, n);
  }
  EXPECT_EQ(seen.size(), binomial(n, static_cast<std::uint64_t>(k)));
}

TEST(SubsetEnumerationTest, RankMatchesEnumerationOrder) {
  const ProcessId n = 8;
  const int k = 4;
  std::uint64_t expected_rank = 0;
  std::optional<ProcessSet> s = first_subset(n, k);
  while (s) {
    EXPECT_EQ(subset_rank(*s, n), expected_rank);
    ++expected_rank;
    s = next_subset(*s, n);
  }
}

TEST(SubsetEnumerationTest, MasksStrictlyIncrease) {
  const ProcessId n = 6;
  std::optional<ProcessSet> s = first_subset(n, 2);
  std::uint64_t last = 0;
  while (s) {
    EXPECT_GT(s->mask(), last);
    last = s->mask();
    s = next_subset(*s, n);
  }
}

}  // namespace
}  // namespace qsel
