#include "common/process_set.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace qsel {
namespace {

TEST(ProcessSetTest, DefaultIsEmpty) {
  ProcessSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
  EXPECT_FALSE(s.contains(0));
}

TEST(ProcessSetTest, InsertEraseContains) {
  ProcessSet s;
  s.insert(3);
  s.insert(7);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.size(), 2);
  s.erase(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.size(), 1);
  s.erase(3);  // erasing a non-member is a no-op
  EXPECT_EQ(s.size(), 1);
}

TEST(ProcessSetTest, InitializerList) {
  ProcessSet s{1, 4, 2};
  EXPECT_EQ(s.size(), 3);
  EXPECT_TRUE(s.contains(1));
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(4));
}

TEST(ProcessSetTest, FullAndRange) {
  EXPECT_EQ(ProcessSet::full(4), (ProcessSet{0, 1, 2, 3}));
  EXPECT_EQ(ProcessSet::full(0), ProcessSet{});
  EXPECT_EQ(ProcessSet::full(64).size(), 64);
  EXPECT_EQ(ProcessSet::range(2, 5), (ProcessSet{2, 3, 4}));
  EXPECT_EQ(ProcessSet::range(3, 3), ProcessSet{});
}

TEST(ProcessSetTest, MinMax) {
  ProcessSet s{5, 9, 63};
  EXPECT_EQ(s.min(), 5u);
  EXPECT_EQ(s.max(), 63u);
  EXPECT_THROW(ProcessSet{}.min(), std::invalid_argument);
}

TEST(ProcessSetTest, SetAlgebra) {
  const ProcessSet a{0, 1, 2};
  const ProcessSet b{2, 3};
  EXPECT_EQ(a | b, (ProcessSet{0, 1, 2, 3}));
  EXPECT_EQ(a & b, ProcessSet{2});
  EXPECT_EQ(a - b, (ProcessSet{0, 1}));
  EXPECT_TRUE((a & b).is_subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE((a - b).intersects(b));
}

TEST(ProcessSetTest, IterationAscendingOrder) {
  const ProcessSet s{9, 0, 33, 4};
  std::vector<ProcessId> ids(s.begin(), s.end());
  EXPECT_EQ(ids, (std::vector<ProcessId>{0, 4, 9, 33}));
}

TEST(ProcessSetTest, ToString) {
  EXPECT_EQ((ProcessSet{1, 3}).to_string(), "{1, 3}");
  EXPECT_EQ(ProcessSet{}.to_string(), "{}");
}

TEST(ProcessSetTest, OutOfRangeInsertThrows) {
  ProcessSet s;
  EXPECT_THROW(s.insert(64), std::invalid_argument);
}

TEST(ProcessSetTest, SubsetReflexiveAndEmpty) {
  const ProcessSet a{1, 2};
  EXPECT_TRUE(a.is_subset_of(a));
  EXPECT_TRUE(ProcessSet{}.is_subset_of(a));
  EXPECT_FALSE(a.is_subset_of(ProcessSet{}));
}

// Property: algebra laws hold on random sets.
TEST(ProcessSetTest, RandomizedAlgebraLaws) {
  Rng rng(42);
  for (int trial = 0; trial < 1000; ++trial) {
    const ProcessSet a(rng());
    const ProcessSet b(rng());
    const ProcessSet c(rng());
    EXPECT_EQ((a | b) & c, (a & c) | (b & c));
    EXPECT_EQ(a - b, a - (a & b));
    EXPECT_EQ((a | b).size() + (a & b).size(), a.size() + b.size());
    EXPECT_TRUE((a - b).is_subset_of(a));
  }
}

}  // namespace
}  // namespace qsel
