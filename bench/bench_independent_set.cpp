// Experiment E6 — the Section VI-C feasibility claim: the NP-hard
// independent-set step of Algorithm 1 is "easy to compute" at
// consortium/permissioned-blockchain scale (tens of nodes).
//
// google-benchmark microbenchmarks of first_independent_set and
// maximal_line_subgraph on adversarially structured suspect graphs
// (suspicions confined to a cover of f faulty processes — the only graphs
// the algorithm sees once the failure detector is accurate), plus a
// hostile dense-core variant.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "graph/independent_set.hpp"
#include "graph/line_subgraph.hpp"
#include "suspect/suspicion_matrix.hpp"

using namespace qsel;

namespace {

/// Suspect graph after an adversary run: edges cover-bounded by f faulty
/// nodes (star-heavy), the shape Algorithm 1 actually solves on.
graph::SimpleGraph adversarial_graph(ProcessId n, int f, std::uint64_t seed) {
  Rng rng(seed);
  graph::SimpleGraph g(n);
  for (ProcessId faulty = 0; faulty < static_cast<ProcessId>(f); ++faulty)
    for (ProcessId victim = 0; victim < n; ++victim)
      if (victim != faulty && rng.chance(0.5)) g.add_edge(faulty, victim);
  return g;
}

/// Dense core on f+2 nodes minus a matching — the Theorem 4 terminal
/// state, the hardest feasible instance near the cover budget.
graph::SimpleGraph dense_core_graph(ProcessId n, int f) {
  graph::SimpleGraph g(n);
  const auto core = static_cast<ProcessId>(f + 2);
  for (ProcessId u = 0; u < core; ++u)
    for (ProcessId v = u + 1; v < core; ++v)
      if (!(u + 1 == v && u % 2 == 0)) g.add_edge(u, v);
  return g;
}

void BM_FirstIndependentSet(benchmark::State& state) {
  const auto n = static_cast<ProcessId>(state.range(0));
  const int f = static_cast<int>(n) / 3;
  const auto g = adversarial_graph(n, f, 99);
  const int q = static_cast<int>(n) - f;
  for (auto _ : state) {
    auto result = graph::first_independent_set(g, q);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FirstIndependentSet)->Arg(10)->Arg(16)->Arg(32)->Arg(48)->Arg(64);

void BM_FirstIndependentSetDenseCore(benchmark::State& state) {
  const auto n = static_cast<ProcessId>(state.range(0));
  const int f = static_cast<int>(n) / 3;
  const auto g = dense_core_graph(n, f);
  const int q = static_cast<int>(n) - f;
  for (auto _ : state) {
    auto result = graph::first_independent_set(g, q);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FirstIndependentSetDenseCore)->Arg(10)->Arg(16)->Arg(32)->Arg(64);

void BM_HasIndependentSet(benchmark::State& state) {
  const auto n = static_cast<ProcessId>(state.range(0));
  const int f = static_cast<int>(n) / 3;
  const auto g = adversarial_graph(n, f, 7);
  const int q = static_cast<int>(n) - f;
  for (auto _ : state) {
    bool result = graph::has_independent_set(g, q);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_HasIndependentSet)->Arg(10)->Arg(32)->Arg(64);

void BM_MaximalLineSubgraph(benchmark::State& state) {
  const auto n = static_cast<ProcessId>(state.range(0));
  const int f = static_cast<int>(n) / 3;
  const auto g = adversarial_graph(n, f, 13);
  for (auto _ : state) {
    auto line = graph::maximal_line_subgraph(g);
    benchmark::DoNotOptimize(line);
  }
}
BENCHMARK(BM_MaximalLineSubgraph)->Arg(10)->Arg(16)->Arg(31)->Arg(64);

void BM_SuspectGraphBuild(benchmark::State& state) {
  const auto n = static_cast<ProcessId>(state.range(0));
  suspect::SuspicionMatrix matrix(n);
  Rng rng(3);
  for (int i = 0; i < 3 * static_cast<int>(n); ++i)
    matrix.stamp(static_cast<ProcessId>(rng.below(n)),
                 static_cast<ProcessId>(rng.below(n)), 1 + rng.below(4));
  for (auto _ : state) {
    auto g = matrix.build_suspect_graph(2);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_SuspectGraphBuild)->Arg(10)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
