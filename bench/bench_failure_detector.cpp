// Experiment E7 — failure detector behaviour (Section IV-B): detection
// latency for omission / timing / crash failures in communication rounds,
// permanence of commission detection, and eventual strong accuracy under
// eventual synchrony (false suspicions before GST, none after, helped by
// adaptive timeouts).
#include <cstdint>
#include <iostream>

#include "metrics/table.hpp"
#include "runtime/quorum_cluster.hpp"

using namespace qsel;
using namespace qsel::runtime;

namespace {

constexpr SimDuration kMs = 1'000'000;

QuorumClusterConfig config_for(ProcessId n, int f, std::uint64_t seed) {
  QuorumClusterConfig config;
  config.n = n;
  config.f = f;
  config.seed = seed;
  config.network.base_latency = 1 * kMs;
  config.network.jitter = 200'000;
  config.heartbeat_period = 5 * kMs;
  config.fd.initial_timeout = 12 * kMs;
  return config;
}

/// Time from fault injection until some correct process suspects the
/// culprit, in communication rounds.
double detection_rounds(QuorumCluster& cluster, ProcessId culprit,
                        SimTime injected_at) {
  auto& sim = cluster.simulator();
  const double round = static_cast<double>(cluster.network().round_length());
  for (SimTime t = injected_at; t < injected_at + 5000 * kMs; t += kMs) {
    sim.run_until(t);
    for (ProcessId id : cluster.alive()) {
      if (cluster.process(id).failure_detector().suspected().contains(
              culprit))
        return static_cast<double>(sim.now() - injected_at) / round;
    }
  }
  return -1;
}

}  // namespace

int main() {
  std::cout << "E7: failure detection latency and accuracy\n\n";
  metrics::Table table(
      {"failure", "n", "f", "detection (rounds)", "quorum excludes culprit"});

  // Crash failure.
  {
    QuorumCluster cluster(config_for(4, 1, 1));
    cluster.start();
    cluster.simulator().run_until(50 * kMs);
    cluster.network().crash(1);
    const double rounds = detection_rounds(cluster, 1, 50 * kMs);
    cluster.simulator().run_until(2000 * kMs);
    const auto quorum = cluster.agreed_quorum();
    table.row("crash", 4, 1, rounds,
              quorum && !quorum->contains(1) ? "yes" : "NO");
  }
  // Omission on a single link (Section I: individual links).
  {
    QuorumCluster cluster(config_for(4, 1, 2));
    cluster.start();
    cluster.simulator().run_until(50 * kMs);
    cluster.network().set_link_enabled(1, 0, false);
    const double rounds = detection_rounds(cluster, 1, 50 * kMs);
    cluster.simulator().run_until(2000 * kMs);
    const auto quorum = cluster.agreed_quorum();
    table.row("link omission", 4, 1, rounds,
              quorum && !quorum->contains(1) ? "yes" : "NO");
  }
  // Timing failure: all links from the culprit slowed far beyond the
  // timeout (increasing timing failure, eventually detected).
  {
    auto config = config_for(4, 1, 3);
    config.fd.adaptive = false;
    QuorumCluster cluster(config);
    cluster.start();
    cluster.simulator().run_until(50 * kMs);
    for (ProcessId to = 0; to < 4; ++to)
      if (to != 2) cluster.network().set_link_extra_delay(2, to, 100 * kMs);
    const double rounds = detection_rounds(cluster, 2, 50 * kMs);
    cluster.simulator().run_until(2000 * kMs);
    const auto quorum = cluster.agreed_quorum();
    table.row("timing (100ms delay)", 4, 1, rounds,
              quorum && !quorum->contains(2) ? "yes" : "NO");
  }
  table.print(std::cout);

  // Eventual strong accuracy under eventual synchrony.
  std::cout << "\nEventual strong accuracy across GST (pre-GST extra delay "
               "60 ms >> 12 ms timeout):\n\n";
  metrics::Table accuracy({"phase", "false suspicions raised",
                           "suspicions cancelled", "agreed quorum"});
  auto config = config_for(5, 2, 4);
  config.network.pre_gst_extra = 60 * kMs;
  config.network.gst = 400 * kMs;
  QuorumCluster cluster(config);
  cluster.start();
  cluster.simulator().run_until(400 * kMs);
  std::uint64_t raised_pre = 0, cancelled_pre = 0;
  for (ProcessId id : cluster.correct()) {
    raised_pre += cluster.process(id).failure_detector().suspicions_raised();
    cancelled_pre +=
        cluster.process(id).failure_detector().suspicions_cancelled();
  }
  accuracy.row("pre-GST (0-400ms)", raised_pre, cancelled_pre, "-");
  cluster.simulator().run_until(3000 * kMs);
  // Settle, then measure a quiet post-GST window.
  std::uint64_t raised_mid = 0;
  for (ProcessId id : cluster.correct())
    raised_mid += cluster.process(id).failure_detector().suspicions_raised();
  cluster.simulator().run_until(6000 * kMs);
  std::uint64_t raised_post = 0, cancelled_post = 0;
  for (ProcessId id : cluster.correct()) {
    raised_post += cluster.process(id).failure_detector().suspicions_raised();
    cancelled_post +=
        cluster.process(id).failure_detector().suspicions_cancelled();
  }
  const auto agreed = cluster.agreed_quorum();
  accuracy.row("post-GST window (3s-6s)", raised_post - raised_mid,
               cancelled_post - cancelled_pre,
               agreed ? agreed->to_string() : "(disagree)");
  accuracy.print(std::cout);
  return 0;
}
