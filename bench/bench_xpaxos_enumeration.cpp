// Experiment E4 — quorum installation policy in XPaxos (Section V-B):
// the original round-robin enumeration of all C(n, q) quorums vs. Quorum
// Selection driving view changes. Crash up to f replicas mid-run and
// measure view changes until the cluster stabilizes, plus the recovery
// time and the requests completed. The enumeration baseline has to try
// every quorum containing a crashed process that precedes a working one;
// Quorum Selection identifies the culprits and jumps.
#include <cstdint>
#include <iostream>

#include "common/combinatorics.hpp"
#include "metrics/table.hpp"
#include "xpaxos/cluster.hpp"

using namespace qsel;
using namespace qsel::xpaxos;

namespace {

constexpr SimDuration kMs = 1'000'000;

struct Outcome {
  std::uint64_t view_changes = 0;
  std::uint64_t completed = 0;
  double recovery_ms = 0;
  bool consistent = false;
};

Outcome run(ProcessId n, int f, QuorumPolicy policy, std::uint64_t seed) {
  ClusterConfig config;
  config.n = n;
  config.f = f;
  config.policy = policy;
  config.seed = seed;
  config.clients = 1;
  config.network.base_latency = 1 * kMs;
  config.network.jitter = 200'000;
  config.fd.initial_timeout = 10 * kMs;
  config.view_change_retry = 40 * kMs;
  config.client_retry = 60 * kMs;
  Cluster cluster(config);
  cluster.start_clients(0);  // open-ended stream
  cluster.simulator().run_until(50 * kMs);
  // Crash the f lowest-id members of the initial quorum, one at a time.
  for (int i = 0; i < f; ++i) {
    cluster.network().crash(static_cast<ProcessId>(i));
    cluster.simulator().run_until((50 + 100 * (static_cast<SimTime>(i) + 1)) *
                                  kMs);
  }
  const SimTime crash_done = cluster.simulator().now();
  const std::uint64_t completed_at_crash = cluster.total_completed();
  // Run until progress resumes, then measure stability.
  SimTime recovered = 0;
  for (SimTime t = crash_done; t < crash_done + 60'000 * kMs;
       t += 10 * kMs) {
    cluster.simulator().run_until(t);
    if (recovered == 0 && cluster.total_completed() > completed_at_crash + 3)
      recovered = t;
    if (recovered != 0 && t > recovered + 500 * kMs) break;
  }
  Outcome outcome;
  outcome.view_changes = cluster.max_view_changes();
  outcome.completed = cluster.total_completed();
  outcome.recovery_ms =
      recovered == 0 ? -1.0
                     : static_cast<double>(recovered - crash_done) / 1e6;
  outcome.consistent = cluster.histories_consistent();
  return outcome;
}

}  // namespace

int main() {
  std::cout << "E4: XPaxos view changes until recovery — enumeration "
               "(original XPaxos) vs Quorum Selection (this paper)\n"
            << "after crashing the f lowest-id members of the initial "
               "quorum\n\n";
  metrics::Table table({"n", "f", "C(n,q) quorums", "policy", "view changes",
                        "recovery ms", "completed", "consistent"});
  for (int f = 1; f <= 2; ++f) {
    const auto n = static_cast<ProcessId>(3 * f + 1);
    for (const auto policy :
         {QuorumPolicy::kEnumeration, QuorumPolicy::kQuorumSelection}) {
      const Outcome outcome = run(n, f, policy, 42);
      table.row(n, f,
                binomial(n, static_cast<std::uint64_t>(
                                static_cast<int>(n) - f)),
                policy == QuorumPolicy::kEnumeration ? "enumeration"
                                                     : "quorum-selection",
                outcome.view_changes, outcome.recovery_ms, outcome.completed,
                outcome.consistent ? "yes" : "NO");
    }
  }
  // A wider configuration where the enumeration's combinatorics bite
  // harder: n = 9, f = 2 -> C(9,7) = 36 quorums.
  for (const auto policy :
       {QuorumPolicy::kEnumeration, QuorumPolicy::kQuorumSelection}) {
    const Outcome outcome = run(9, 2, policy, 42);
    table.row(9, 2, binomial(9, 7),
              policy == QuorumPolicy::kEnumeration ? "enumeration"
                                                   : "quorum-selection",
              outcome.view_changes, outcome.recovery_ms, outcome.completed,
              outcome.consistent ? "yes" : "NO");
  }
  table.print(std::cout);
  return 0;
}
