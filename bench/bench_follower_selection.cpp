// Experiment E3 — Follower Selection interruption bounds (Section IX):
// Theorem 9 (<= 3f+1 quorums per epoch) and Corollary 10 (<= 6f+2 after
// the failure detector becomes accurate), against the adversary game of
// Section VIII. Also shows the crossover against general Quorum
// Selection: 3f+1 = C(f+2,2) at f = 3, strictly smaller from f = 4 — the
// O(f) vs Omega(f^2) separation of the paper's abstract.
#include <cstdint>
#include <iostream>
#include <string>

#include "adversary/follower_game.hpp"
#include "adversary/quorum_game.hpp"
#include "common/combinatorics.hpp"
#include "metrics/table.hpp"

using namespace qsel;

int main() {
  std::cout << "E3: worst-case quorums issued by Algorithm 2 (one epoch)\n"
            << "paper: Theorem 9 bound 3f+1 per epoch; Corollary 10: 6f+2 "
               "total\n\n";
  metrics::Table table({"f", "n", "exact quorums", "constructive",
                        "greedy", "3f+1 (Thm 9)", "6f+2 (Cor 10)",
                        "QS worst case C(f+2,2)"});
  for (int f = 1; f <= 8; ++f) {
    const auto n = static_cast<ProcessId>(3 * f + 1);
    adversary::FollowerGame game(adversary::FollowerGameConfig{n, f, 0});
    std::string exact = "-";
    if (f <= 2)
      exact = std::to_string(game.max_changes().leader_changes + 1);
    const auto constructive = game.constructive_changes();
    const auto greedy = game.greedy_changes();
    table.row(f, n, exact, constructive.leader_changes + 1,
              greedy.leader_changes + 1, 3 * f + 1, 6 * f + 2,
              binomial(static_cast<std::uint64_t>(f) + 2, 2));
  }
  table.print(std::cout);
  std::cout
      << "\n('exact' explores the full game tree, feasible for f <= 2; the\n"
         "constructive strategy achieves the 3f+1 cap for f <= 5 and stays\n"
         "a lower bound beyond. QS column: Theorem 4 — Follower Selection\n"
         "wins strictly from f = 4 on.)\n\n";

  std::cout << "Constructive adversary trace for f = 2 (leader walk):\n";
  adversary::FollowerGame game(adversary::FollowerGameConfig{7, 2, 0});
  const auto result = game.constructive_changes();
  metrics::Table trace({"step", "suspicion", "leader"});
  graph::SimpleGraph g(7);
  trace.row(0, "(initial)", game.leader_for(g));
  int step = 1;
  for (auto [u, v] : result.suspicions) {
    g.add_edge(u, v);
    trace.row(step++, "p" + std::to_string(u) + " ~ p" + std::to_string(v),
              game.leader_for(g));
  }
  trace.print(std::cout);
  return 0;
}
