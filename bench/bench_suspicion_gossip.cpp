// Experiment E8 — cost and convergence of the eventually-consistent
// suspicion propagation (Section VI-A): UPDATE messages per suspicion and
// rounds until all correct processes agree on the changed quorum (Lemma 1
// says suspicions propagate within one communication round; quorum
// agreement follows right after), plus the equivocation case — a faulty
// origin sending different rows to different peers only makes the join
// converge to the union (Section VI-C).
#include <cstdint>
#include <iostream>

#include "metrics/table.hpp"
#include "runtime/quorum_cluster.hpp"

using namespace qsel;
using namespace qsel::runtime;

namespace {

constexpr SimDuration kMs = 1'000'000;

}  // namespace

int main() {
  std::cout << "E8: suspicion gossip — convergence and message cost per "
               "quorum change\n\n";
  metrics::Table table({"n", "f", "UPDATE msgs", "agreement (rounds)",
                        "agreed quorum"});
  for (const auto& [n, f] :
       std::vector<std::pair<ProcessId, int>>{{4, 1}, {7, 2}, {10, 3},
                                              {13, 4}, {16, 5}}) {
    QuorumClusterConfig config;
    config.n = n;
    config.f = f;
    config.seed = 21;
    config.network.base_latency = 1 * kMs;
    config.network.jitter = 200'000;
    config.heartbeat_period = 0;  // drive suspicions directly
    QuorumCluster cluster(config);
    cluster.simulator().run_until(10 * kMs);
    const std::uint64_t updates_before =
        cluster.network().stats().by_type("suspect.update");
    // One real suspicion: process 1 suspects process 0. The suspect graph
    // gains the edge (0,1); the lexicographically first independent set
    // keeps the smaller id, so the expected new quorum drops process 1.
    const ProcessSet initial = cluster.process(2).quorum();
    const SimTime injected = cluster.simulator().now();
    cluster.process(1).selector().on_suspected(ProcessSet{0});
    // Advance until every correct process reports the same changed quorum.
    SimTime agreed_at = 0;
    for (SimTime t = injected; t <= injected + 1000 * kMs; t += 100'000) {
      cluster.simulator().run_until(t);
      const auto agreed = cluster.agreed_quorum();
      if (agreed && *agreed != initial) {
        agreed_at = t;
        break;
      }
    }
    cluster.simulator().run_until(injected + 1000 * kMs);
    const std::uint64_t updates =
        cluster.network().stats().by_type("suspect.update") - updates_before;
    const double rounds =
        agreed_at == 0
            ? -1
            : static_cast<double>(agreed_at - injected) /
                  static_cast<double>(cluster.network().round_length());
    const auto agreed = cluster.agreed_quorum();
    table.row(n, f, updates, rounds,
              agreed ? agreed->to_string() : "(disagree)");
  }
  table.print(std::cout);

  std::cout << "\nEquivocating origin: process 0 (faulty) sends different "
               "suspicion rows to different peers. The max-merge makes "
               "correct processes converge on the *join* of both rows — "
               "equivocation cannot split the quorum, it only adds the "
               "union of the claimed suspicions (Section VI-C: \"such "
               "behavior will only cause Quorum Selection to terminate "
               "faster\").\n\n";
  metrics::Table equivocation({"n", "converged", "agreed quorum",
                               "both claimed edges applied"});
  {
    const ProcessId n = 7;
    QuorumClusterConfig config;
    config.n = n;
    config.f = 2;
    config.seed = 22;
    config.network.base_latency = 1 * kMs;
    config.network.jitter = 200'000;
    config.heartbeat_period = 0;
    QuorumCluster cluster(config, ProcessSet{0});  // 0 is Byzantine
    cluster.simulator().run_until(10 * kMs);
    // Craft two conflicting rows signed by 0 and send them to different
    // halves of the cluster.
    crypto::Signer byzantine(cluster.keys(), 0);
    std::vector<Epoch> row_a(n, 0), row_b(n, 0);
    row_a[1] = 1;  // "0 suspects 1"
    row_b[5] = 1;  // "0 suspects 5"
    const auto update_a = suspect::UpdateMessage::make(byzantine, row_a);
    const auto update_b = suspect::UpdateMessage::make(byzantine, row_b);
    for (ProcessId to : ProcessSet{1, 2, 3})
      cluster.network().send(0, to, update_a);
    for (ProcessId to : ProcessSet{4, 5, 6})
      cluster.network().send(0, to, update_b);
    cluster.simulator().run_until(1000 * kMs);
    const auto agreed = cluster.agreed_quorum();
    // The join carries both edges (0,1) and (0,5); the lexicographically
    // first independent set of size 5 is then {0,2,3,4,6}.
    const bool join_applied =
        agreed && !agreed->contains(1) && !agreed->contains(5);
    equivocation.row(n, agreed ? "yes" : "NO",
                     agreed ? agreed->to_string() : "-",
                     join_applied ? "yes" : "NO");
    equivocation.print(std::cout);
  }
  return 0;
}
