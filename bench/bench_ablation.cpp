// Ablation studies for the design choices DESIGN.md calls out.
//
// A1 — chain reconfiguration: BChain's replacement ("promote a spare,
//      assume it is correct") vs the same data path driven by the paper's
//      failure detector + Algorithm 1 (the Section X future-work
//      integration). Two scenarios:
//      (a) locally-attributable fault: a member drops everything it
//          relays — both policies isolate it (the integration costs
//          nothing on the easy case);
//      (b) Byzantine accuser: a faulty member broadcasts accusations
//          against innocent members. Replacement believes any blame and
//          evicts innocents until the chain routes through the attacker;
//          under Algorithm 1 an accusation is an *edge* incident to its
//          author, so the first independent set simply drops the accuser.
//
// A2 — failure detector timeout adaptivity: with doubling-on-false-
//      suspicion (eventual strong accuracy) vs a fixed timeout, under an
//      eventually-synchronous network whose pre-GST delays exceed the
//      initial timeout.
#include <cstdint>
#include <iostream>

#include "bchain/cluster.hpp"
#include "bchain/qs_cluster.hpp"
#include "metrics/table.hpp"
#include "runtime/quorum_cluster.hpp"

using namespace qsel;

namespace {

constexpr SimDuration kMs = 1'000'000;

}  // namespace

int main() {
  std::cout << "A1: chain reconfiguration — replacement (BChain) vs quorum "
               "selection (Section X integration)\n"
            << "scenario: n = 7, f = 2; chain member p1 keeps receiving but "
               "drops all messages it sends\n\n";
  metrics::Table a1({"reconfig policy", "reconfigs", "culprit isolated",
                     "completed @3s", "completed @8s"});
  {
    bchain::ClusterConfig config;
    config.n = 7;
    config.f = 2;
    config.seed = 5;
    config.network.base_latency = 1 * kMs;
    config.network.jitter = 200'000;
    bchain::Cluster cluster(config);
    cluster.start_clients(0);
    cluster.simulator().run_until(40 * kMs);
    for (ProcessId to = 0; to < 7; ++to)
      if (to != 1) cluster.network().set_link_enabled(1, to, false);
    cluster.simulator().run_until(3000 * kMs);
    const std::uint64_t mid = cluster.total_completed();
    cluster.simulator().run_until(8000 * kMs);
    bool isolated = true;
    for (ProcessId id : cluster.alive_replicas()) {
      if (id == 1) continue;
      const auto& chain = cluster.replica(id).chain();
      if (std::count(chain.begin(), chain.end(), 1) != 0) isolated = false;
    }
    a1.row("replacement", cluster.max_reconfigurations(),
           isolated ? "yes" : "NO (cycled back in)", mid,
           cluster.total_completed());
  }
  {
    bchain::QsClusterConfig config;
    config.n = 7;
    config.f = 2;
    config.seed = 5;
    config.network.base_latency = 1 * kMs;
    config.network.jitter = 200'000;
    config.fd.initial_timeout = 20 * kMs;
    bchain::QsChainCluster cluster(config);
    cluster.start_clients(0);
    cluster.simulator().run_until(40 * kMs);
    for (ProcessId to = 0; to < 7; ++to)
      if (to != 1) cluster.network().set_link_enabled(1, to, false);
    cluster.simulator().run_until(3000 * kMs);
    const std::uint64_t mid = cluster.total_completed();
    cluster.simulator().run_until(8000 * kMs);
    bool isolated = true;
    for (ProcessId id : cluster.alive_replicas()) {
      if (id == 1) continue;
      const auto& chain = cluster.replica(id).chain();
      if (std::count(chain.begin(), chain.end(), 1) != 0) isolated = false;
    }
    a1.row("quorum-selection", cluster.max_reconfigurations(),
           isolated ? "yes" : "NO", mid, cluster.total_completed());
  }
  a1.print(std::cout);

  std::cout << "\nA1b: Byzantine accuser — faulty p1 broadcasts accusations "
               "against innocent members 2, 3, 4 (n = 7, f = 2)\n\n";
  metrics::Table a1b({"reconfig policy", "innocents evicted",
                      "accuser in final chain", "completed @5s"});
  {
    bchain::ClusterConfig config;
    config.n = 7;
    config.f = 2;
    config.seed = 13;
    config.network.base_latency = 1 * kMs;
    config.network.jitter = 200'000;
    bchain::Cluster cluster(config);  // p1 runs honestly except for blames
    cluster.start_clients(0);
    cluster.simulator().run_until(40 * kMs);
    const crypto::Signer attacker(cluster.keys(), 1);
    std::uint64_t epoch = 1;
    for (ProcessId victim : ProcessSet{2, 3, 4}) {
      const auto blame =
          bchain::ReconfigMessage::make(attacker, epoch++, victim);
      for (ProcessId to = 0; to < 7; ++to)
        if (to != 1) cluster.network().send(1, to, blame);
    }
    cluster.simulator().run_until(5000 * kMs);
    const auto& chain = cluster.replica(0).chain();
    int innocents_evicted = 0;
    for (ProcessId victim : ProcessSet{2, 3, 4})
      if (std::count(chain.begin(), chain.end(), victim) == 0)
        ++innocents_evicted;
    const bool accuser_in =
        std::count(chain.begin(), chain.end(), 1) != 0;
    a1b.row("replacement", innocents_evicted, accuser_in ? "yes" : "no",
            cluster.total_completed());
  }
  {
    bchain::QsClusterConfig config;
    config.n = 7;
    config.f = 2;
    config.seed = 13;
    config.network.base_latency = 1 * kMs;
    config.network.jitter = 200'000;
    config.fd.initial_timeout = 20 * kMs;
    bchain::QsChainCluster cluster(config);
    cluster.start_clients(0);
    cluster.simulator().run_until(40 * kMs);
    // The attacker's only weapon here is a signed suspicion row — every
    // claimed edge is incident to the attacker itself.
    const crypto::Signer attacker(cluster.keys(), 1);
    std::vector<Epoch> row(7, 0);
    row[2] = row[3] = row[4] = 1;
    const auto poison = suspect::UpdateMessage::make(attacker, row);
    for (ProcessId to = 0; to < 7; ++to)
      if (to != 1) cluster.network().send(1, to, poison);
    cluster.simulator().run_until(5000 * kMs);
    const auto& chain = cluster.replica(0).chain();
    int innocents_evicted = 0;
    for (ProcessId victim : ProcessSet{2, 3, 4})
      if (std::count(chain.begin(), chain.end(), victim) == 0)
        ++innocents_evicted;
    const bool accuser_in =
        std::count(chain.begin(), chain.end(), 1) != 0;
    a1b.row("quorum-selection", innocents_evicted, accuser_in ? "yes" : "no",
            cluster.total_completed());
  }
  a1b.print(std::cout);
  std::cout << "\n(Replacement accepts any signed blame at face value; "
               "under Algorithm 1 the same accusations become edges "
               "(1,2),(1,3),(1,4) and the first independent set drops the "
               "accuser instead.)\n";

  std::cout << "\nA2: adaptive vs fixed failure-detector timeouts under "
               "eventual synchrony\n"
            << "pre-GST extra delay 60 ms, initial timeout 12 ms, GST at "
               "400 ms, n = 5, f = 2\n\n";
  metrics::Table a2({"timeout policy", "false suspicions (post-GST window)",
                     "quorum changes total", "stable at end"});
  for (const bool adaptive : {true, false}) {
    runtime::QuorumClusterConfig config;
    config.n = 5;
    config.f = 2;
    config.seed = 4;
    config.network.base_latency = 1 * kMs;
    config.network.jitter = 200'000;
    config.network.pre_gst_extra = 60 * kMs;
    config.network.gst = 400 * kMs;
    config.heartbeat_period = 5 * kMs;
    config.fd.initial_timeout = 12 * kMs;
    config.fd.adaptive = adaptive;
    runtime::QuorumCluster cluster(config);
    cluster.start();
    cluster.simulator().run_until(3000 * kMs);
    std::uint64_t raised_mid = 0;
    for (ProcessId id : cluster.correct())
      raised_mid +=
          cluster.process(id).failure_detector().suspicions_raised();
    const std::uint64_t issued_mid = cluster.total_quorums_issued();
    cluster.simulator().run_until(6000 * kMs);
    std::uint64_t raised_post = 0;
    for (ProcessId id : cluster.correct())
      raised_post +=
          cluster.process(id).failure_detector().suspicions_raised();
    const bool stable = cluster.total_quorums_issued() == issued_mid &&
                        cluster.agreed_quorum().has_value();
    a2.row(adaptive ? "adaptive (doubling)" : "fixed",
           raised_post - raised_mid, cluster.total_quorums_issued(),
           stable ? "yes" : "NO");
  }
  a2.print(std::cout);
  std::cout << "\n(Fixed timeouts below the real network delay keep raising "
               "false suspicions forever — eventual strong accuracy needs "
               "the back-off.)\n";
  return 0;
}
