// Experiment E5 — the motivating claim (Section I, citing Distler et
// al. [6]): running on an active quorum of n-f processes drops roughly
// 1/3 of the inter-replica messages at n = 3f+1 (and 1/2 at n = 2f+1)
// compared to full-broadcast BFT — and Quorum Selection keeps that
// benefit in the presence of failures.
//
// Measures inter-replica messages and bytes per request plus median
// request latency for: the PBFT-style baseline (all-to-all), XPaxos on
// the selected quorum, and the BChain-style chain, each fault-free and
// with one crashed replica.
#include <cstdint>
#include <iostream>
#include <string>

#include "bchain/cluster.hpp"
#include "metrics/table.hpp"
#include "pbft/cluster.hpp"
#include "xpaxos/cluster.hpp"

using namespace qsel;

namespace {

constexpr SimDuration kMs = 1'000'000;
constexpr std::uint64_t kRequests = 200;

struct Measurement {
  double messages_per_request = 0;
  double bytes_per_request = 0;
  double median_latency_ms = 0;
  std::uint64_t completed = 0;
};

/// Counts only inter-replica traffic: client requests and replies are
/// identical across protocols and excluded.
template <class Cluster>
Measurement measure(Cluster& cluster, ProcessId n, bool crash_one,
                    SimTime horizon) {
  cluster.start_clients(kRequests);
  if (crash_one) {
    cluster.simulator().run_until(30 * kMs);
    cluster.network().crash(n - 2);  // a non-leader quorum member
  }
  cluster.simulator().run_until(horizon);
  Measurement m;
  m.completed = cluster.total_completed();
  const auto& stats = cluster.network().stats();
  std::uint64_t inter_replica = 0;
  std::uint64_t inter_bytes = 0;
  for (const auto& [type, count] : stats.type_counts()) {
    if (type == "smr.request" || type == "smr.reply") continue;
    inter_replica += count;
  }
  inter_bytes = stats.total_bytes();  // dominated by protocol messages
  if (m.completed > 0) {
    m.messages_per_request = static_cast<double>(inter_replica) /
                             static_cast<double>(m.completed);
    m.bytes_per_request =
        static_cast<double>(inter_bytes) / static_cast<double>(m.completed);
    m.median_latency_ms = cluster.client(0).latencies().median() / 1e6;
  }
  return m;
}

}  // namespace

int main() {
  std::cout << "E5: inter-replica messages per request — full broadcast vs "
               "active quorum (n = 3f+1)\n\n";
  metrics::Table table({"protocol", "n", "f", "fault", "msgs/req",
                        "bytes/req", "median lat (ms)", "completed"});

  for (int f : {1, 2}) {
    const auto n = static_cast<ProcessId>(3 * f + 1);
    for (const bool crash : {false, true}) {
      const char* fault = crash ? "1 crash" : "none";
      {
        pbft::ClusterConfig config;
        config.n = n;
        config.f = f;
        config.seed = 7;
        config.network.base_latency = 1 * kMs;
        config.network.jitter = 200'000;
        pbft::Cluster cluster(config);
        const auto m = measure(cluster, n, crash, 30'000 * kMs);
        table.row("pbft (all-to-all)", n, f, fault, m.messages_per_request,
                  m.bytes_per_request, m.median_latency_ms, m.completed);
      }
      {
        xpaxos::ClusterConfig config;
        config.n = n;
        config.f = f;
        config.policy = xpaxos::QuorumPolicy::kQuorumSelection;
        config.seed = 7;
        config.network.base_latency = 1 * kMs;
        config.network.jitter = 200'000;
        config.fd.initial_timeout = 10 * kMs;
        xpaxos::Cluster cluster(config);
        const auto m = measure(cluster, n, crash, 30'000 * kMs);
        table.row("xpaxos + quorum sel.", n, f, fault, m.messages_per_request,
                  m.bytes_per_request, m.median_latency_ms, m.completed);
      }
      {
        bchain::ClusterConfig config;
        config.n = n;
        config.f = f;
        config.seed = 7;
        config.network.base_latency = 1 * kMs;
        config.network.jitter = 200'000;
        bchain::Cluster cluster(config);
        const auto m = measure(cluster, n, crash, 30'000 * kMs);
        table.row("bchain (chain)", n, f, fault, m.messages_per_request,
                  m.bytes_per_request, m.median_latency_ms, m.completed);
      }
    }
  }
  table.print(std::cout);
  std::cout << "\n(XPaxos quorum pattern: (q-1) prepares + q(q-1) commits; "
               "PBFT: (n-1) + 2n(n-1) votes — the active quorum drops the "
               "share of messages the paper's introduction reports. BChain "
               "trades latency for the minimum message count.)\n";
  return 0;
}
