// Experiment E2 — the Theorem 4 lower bound, constructively: replay an
// optimal adversary run against Algorithm 1 and print the full
// quorum/suspicion trace (the Figure 5 scenario generalized). Every
// suspicion hits two members of the current quorum; the run reaches
// C(f+2,2) quorums and the final suspicion set is attributable to f
// faulty processes (a vertex cover of size f exists).
#include <cstdint>
#include <iostream>

#include "adversary/quorum_game.hpp"
#include "common/combinatorics.hpp"
#include "graph/independent_set.hpp"
#include "metrics/table.hpp"

using namespace qsel;

int main() {
  std::cout << "E2: constructive Theorem 4 adversary vs Algorithm 1\n\n";
  for (int f = 1; f <= 3; ++f) {
    const auto n = static_cast<ProcessId>(3 * f + 1);
    adversary::QuorumGame game(adversary::QuorumGameConfig{n, f, 0});
    const auto result = game.max_changes();
    std::cout << "f = " << f << ", n = " << n << ": " << result.changes + 1
              << " quorums (bound C(f+2,2) = "
              << binomial(static_cast<std::uint64_t>(f) + 2, 2) << ")\n";
    metrics::Table table({"step", "suspicion", "new quorum"});
    graph::SimpleGraph g(n);
    table.row(0, "(initial)", game.quorum_for(g).to_string());
    int step = 1;
    for (auto [u, v] : result.suspicions) {
      g.add_edge(u, v);
      table.row(step++,
                "p" + std::to_string(u) + " ~ p" + std::to_string(v),
                game.quorum_for(g).to_string());
    }
    table.print(std::cout);
    const auto cover = graph::vertex_cover_within(g, f);
    std::cout << "faulty set attribution F = "
              << (cover ? cover->to_string() : "(none)") << "\n\n";
  }
  return 0;
}
