// Experiment E1 — how many quorums can faulty processes force Algorithm 1
// to issue? (Section VII: Theorem 3 upper bound f(f+1) per epoch; the
// text's simulation claim that the true maximum is C(f+2,2); Theorem 4's
// matching lower bound.)
//
// The exact column explores the full adversary game tree (suspicions
// confined to f+2 processes, each pair once, both endpoints inside the
// current quorum, everything attributable to f faulty processes) with
// memoization on the suspicion-edge set. "quorums" counts the initial
// quorum plus one per forced change, matching the paper's counting.
#include <cstdint>
#include <iostream>

#include "adversary/quorum_game.hpp"
#include "common/combinatorics.hpp"
#include "metrics/table.hpp"

using namespace qsel;

int main() {
  std::cout << "E1: worst-case quorums issued by Algorithm 1 (one epoch, "
               "accurate failure detector)\n"
            << "paper: Theorem 3 bound f(f+1)+1; simulations suggest exactly "
               "C(f+2,2)\n\n";
  metrics::Table table({"f", "n", "exact quorums", "greedy quorums",
                        "C(f+2,2) (paper sims + Thm 4)", "f(f+1)+1 (Thm 3)",
                        "states explored"});
  for (int f = 1; f <= 5; ++f) {
    const auto n = static_cast<ProcessId>(3 * f + 1);
    adversary::QuorumGame game(adversary::QuorumGameConfig{n, f, 0});
    const auto exact = game.max_changes();
    const auto greedy = game.greedy_changes();
    table.row(f, n, exact.changes + 1, greedy.changes + 1,
              binomial(static_cast<std::uint64_t>(f) + 2, 2),
              static_cast<std::uint64_t>(f) * (static_cast<unsigned>(f) + 1) +
                  1,
              exact.states_explored);
  }
  table.print(std::cout);

  std::cout << "\nSame game with the minimal n = 2f+1 (trusted-component "
               "systems [4,5]): the worst case depends on f, not n.\n\n";
  metrics::Table small({"f", "n", "exact quorums", "C(f+2,2)"});
  for (int f = 1; f <= 5; ++f) {
    const auto n = static_cast<ProcessId>(2 * f + 1);
    adversary::QuorumGame game(adversary::QuorumGameConfig{n, f, 0});
    small.row(f, n, game.max_changes().changes + 1,
              binomial(static_cast<std::uint64_t>(f) + 2, 2));
  }
  small.print(std::cout);
  return 0;
}
