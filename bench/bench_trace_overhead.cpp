// E-trace: overhead of the tracing subsystem (ISSUE: tracing disabled must
// stay within ~2% of a build without a tracer attached).
//
// Two views:
//   BM_Record_*       — the raw Tracer::record hot path, events/sec.
//   BM_NetworkSend_*  — an end-to-end simulator send/deliver loop with the
//                       tracer attached the way runtime clusters attach it,
//                       messages/sec (each message journals SEND + DELIVER).
#include <benchmark/benchmark.h>

#include <memory>
#include <string_view>

#include "sim/network.hpp"
#include "trace/tracer.hpp"

namespace {

using namespace qsel;

struct BenchPayload final : sim::Payload {
  std::string_view type_tag() const override { return "bench.msg"; }
  std::size_t wire_size() const override { return 48; }
};

struct Sink final : sim::Actor {
  std::uint64_t received = 0;
  void on_message(ProcessId, const sim::PayloadPtr&) override { ++received; }
};

trace::TracerConfig ring_config() {
  trace::TracerConfig config;
  config.ring_capacity = 65536;
  return config;
}

trace::TracerConfig disabled_config() {
  trace::TracerConfig config;
  config.enabled = false;
  return config;
}

trace::TracerConfig jsonl_config() {
  trace::TracerConfig config;
  config.ring_capacity = 65536;
  config.jsonl_path = "/tmp/bench_trace_overhead.jsonl";
  return config;
}

// --- raw record-path cost -----------------------------------------------

void record_loop(benchmark::State& state, trace::Tracer& tracer) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    tracer.send(static_cast<ProcessId>(i % 8), static_cast<ProcessId>((i + 1) % 8),
                "bench.msg", i, 48);
    ++i;
  }
  benchmark::DoNotOptimize(tracer.events_recorded());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Record_Disabled(benchmark::State& state) {
  trace::Tracer tracer(disabled_config());
  record_loop(state, tracer);
}
BENCHMARK(BM_Record_Disabled);

void BM_Record_Ring(benchmark::State& state) {
  trace::Tracer tracer(ring_config());
  record_loop(state, tracer);
}
BENCHMARK(BM_Record_Ring);

void BM_Record_Jsonl(benchmark::State& state) {
  trace::Tracer tracer(jsonl_config());
  record_loop(state, tracer);
  tracer.flush();
}
BENCHMARK(BM_Record_Jsonl);

// --- end-to-end simulator loop ------------------------------------------

constexpr int kBatch = 1024;

// One iteration = build a 2-process network, send kBatch messages, run the
// simulator to deliver them. Construction cost is identical across modes,
// so the deltas isolate the tracing overhead on the send/deliver path.
void network_loop(benchmark::State& state, trace::Tracer* tracer) {
  for (auto _ : state) {
    sim::Simulator simulator;
    sim::NetworkConfig config;
    config.base_latency = 1000;
    config.jitter = 100;
    sim::Network net(simulator, 2, config, 42);
    Sink a, b;
    net.attach(0, a);
    net.attach(1, b);
    if (tracer != nullptr) {
      tracer->set_clock([&simulator] { return simulator.now(); });
      net.set_tracer(tracer);
    }
    const auto payload = std::make_shared<BenchPayload>();
    for (int i = 0; i < kBatch; ++i)
      net.send(static_cast<ProcessId>(i % 2), static_cast<ProcessId>((i + 1) % 2),
               payload);
    simulator.run();
    benchmark::DoNotOptimize(a.received + b.received);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kBatch);
}

void BM_NetworkSend_NoTracer(benchmark::State& state) {
  network_loop(state, nullptr);
}
BENCHMARK(BM_NetworkSend_NoTracer);

void BM_NetworkSend_DisabledTracer(benchmark::State& state) {
  trace::Tracer tracer(disabled_config());
  network_loop(state, &tracer);
}
BENCHMARK(BM_NetworkSend_DisabledTracer);

void BM_NetworkSend_RingTracer(benchmark::State& state) {
  trace::Tracer tracer(ring_config());
  network_loop(state, &tracer);
}
BENCHMARK(BM_NetworkSend_RingTracer);

void BM_NetworkSend_JsonlTracer(benchmark::State& state) {
  trace::Tracer tracer(jsonl_config());
  network_loop(state, &tracer);
  tracer.flush();
}
BENCHMARK(BM_NetworkSend_JsonlTracer);

}  // namespace

BENCHMARK_MAIN();
